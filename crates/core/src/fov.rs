//! Field-of-view estimation from survey points.
//!
//! §5: "use model-based or ML-based techniques to calibrate a sensor given
//! the observed and ground-truth airplane locations. An example of such
//! techniques is using algorithms, such as k-nearest neighbors (KNN) or a
//! support vector machine (SVM), to estimate the true sensor field of
//! view." All three families are implemented here, plus the simple
//! sector-histogram baseline, so the ablation bench can compare them.

use crate::survey::SurveyPoint;
use aircal_geo::Sector;
use serde::{Deserialize, Serialize};

/// Which estimator to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FovMethod {
    /// Per-bearing-bin maximum observed range, thresholded.
    SectorHistogram {
        /// Bin width, degrees.
        bin_width_deg: f64,
        /// An observation beyond this range marks the bin open, meters.
        range_threshold_m: f64,
    },
    /// k-nearest-neighbors vote in the sensor-centered plane.
    Knn {
        /// Number of neighbors.
        k: usize,
        /// Range at which openness is probed, meters.
        probe_range_m: f64,
    },
    /// Linear SVM (hinge loss, SGD) over harmonic bearing features.
    Svm {
        /// SGD epochs.
        epochs: usize,
        /// Range at which openness is probed, meters.
        probe_range_m: f64,
    },
    /// Logistic regression (log loss, SGD) over the same features.
    Logistic {
        /// SGD epochs.
        epochs: usize,
        /// Range at which openness is probed, meters.
        probe_range_m: f64,
    },
}

impl FovMethod {
    /// The paper-procedure default: 15° histogram bins, 40 km threshold.
    pub fn default_histogram() -> Self {
        FovMethod::SectorHistogram {
            bin_width_deg: 15.0,
            range_threshold_m: 40_000.0,
        }
    }

    /// Sensible KNN defaults.
    pub fn default_knn() -> Self {
        FovMethod::Knn {
            k: 5,
            probe_range_m: 50_000.0,
        }
    }

    /// Sensible SVM defaults.
    pub fn default_svm() -> Self {
        FovMethod::Svm {
            epochs: 200,
            probe_range_m: 50_000.0,
        }
    }

    /// Sensible logistic-regression defaults.
    pub fn default_logistic() -> Self {
        FovMethod::Logistic {
            epochs: 200,
            probe_range_m: 50_000.0,
        }
    }

    /// Short name for reports/benches.
    pub fn name(&self) -> &'static str {
        match self {
            FovMethod::SectorHistogram { .. } => "sector-histogram",
            FovMethod::Knn { .. } => "knn",
            FovMethod::Svm { .. } => "svm",
            FovMethod::Logistic { .. } => "logistic",
        }
    }
}

/// The estimation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FovEstimate {
    /// The single widest open sector (width 0 when nothing long-range was
    /// observed).
    pub estimated: Sector,
    /// Openness ring sampled at 5° steps (72 entries), for plotting and
    /// multi-sector sites.
    pub open_ring: Vec<bool>,
    /// Method used.
    pub method_name: String,
}

impl FovEstimate {
    /// Fraction of the circle estimated open.
    pub fn open_fraction(&self) -> f64 {
        if self.open_ring.is_empty() {
            return 0.0;
        }
        self.open_ring.iter().filter(|&&b| b).count() as f64 / self.open_ring.len() as f64
    }

    /// Intersection-over-union against a ground-truth sector.
    pub fn iou(&self, truth: &Sector) -> f64 {
        self.estimated.iou(truth)
    }
}

/// The estimator front door.
#[derive(Debug, Clone)]
pub struct FovEstimator {
    /// Method configuration.
    pub method: FovMethod,
}

impl Default for FovEstimator {
    fn default() -> Self {
        Self {
            method: FovMethod::default_histogram(),
        }
    }
}

const RING_STEPS: usize = 72; // 5° resolution

impl FovEstimator {
    /// Create an estimator.
    pub fn new(method: FovMethod) -> Self {
        Self { method }
    }

    /// Estimate the field of view from survey points.
    pub fn estimate(&self, points: &[SurveyPoint]) -> FovEstimate {
        let open_ring = match self.method {
            FovMethod::SectorHistogram {
                bin_width_deg,
                range_threshold_m,
            } => histogram_ring(points, bin_width_deg, range_threshold_m),
            FovMethod::Knn { k, probe_range_m } => knn_ring(points, k, probe_range_m),
            FovMethod::Svm {
                epochs,
                probe_range_m,
            } => model_ring(points, epochs, probe_range_m, Loss::Hinge),
            FovMethod::Logistic {
                epochs,
                probe_range_m,
            } => model_ring(points, epochs, probe_range_m, Loss::Logistic),
        };
        FovEstimate {
            estimated: widest_open_sector(&open_ring),
            open_ring,
            method_name: self.method.name().to_string(),
        }
    }
}

/// Histogram baseline: openness per bin from long-range detections.
///
/// A bin opens when it holds "enough" observations beyond the range
/// threshold. With sparse data (one 30 s survey) a single detection is
/// all the evidence there is; with pooled repeated surveys, requiring a
/// detection *rate* keeps one lucky deep-shadow decode from opening a
/// blocked bin. The count floor scales as ⌈opportunities/6⌉.
fn histogram_ring(points: &[SurveyPoint], bin_width_deg: f64, threshold_m: f64) -> Vec<bool> {
    let bin_width = bin_width_deg.clamp(1.0, 120.0);
    let n_bins = (360.0 / bin_width).ceil() as usize;
    let mut observed_beyond = vec![0usize; n_bins];
    let mut opportunities_beyond = vec![0usize; n_bins];
    for p in points.iter().filter(|p| p.range_m >= threshold_m) {
        let bin = ((p.bearing_deg / bin_width) as usize).min(n_bins - 1);
        opportunities_beyond[bin] += 1;
        if p.observed {
            observed_beyond[bin] += 1;
        }
    }
    // Tri-state per bin: Some(open?) where aircraft were available, None
    // where the sky never offered a long-range test. The paper calls this
    // out explicitly: "not receiving any messages from a direction does
    // not necessarily indicate blockage. It could be the case that there
    // were no aircraft in that direction" — which is why the ground truth
    // exists. Unknown bins inherit openness only when the nearest
    // informative bins on *both* sides are open.
    let verdicts: Vec<Option<bool>> = (0..n_bins)
        .map(|bin| {
            if opportunities_beyond[bin] == 0 {
                return None;
            }
            let need = (opportunities_beyond[bin] as f64 / 6.0).ceil().max(1.0) as usize;
            Some(observed_beyond[bin] >= need)
        })
        .collect();
    let resolve = |bin: usize| -> bool {
        if let Some(v) = verdicts[bin] {
            return v;
        }
        let max_hops = n_bins / 4;
        let mut cw = None;
        let mut ccw = None;
        for hop in 1..=max_hops {
            if cw.is_none() {
                cw = verdicts[(bin + hop) % n_bins];
            }
            if ccw.is_none() {
                ccw = verdicts[(bin + n_bins - hop % n_bins) % n_bins];
            }
        }
        cw.unwrap_or(false) && ccw.unwrap_or(false)
    };
    (0..RING_STEPS)
        .map(|i| {
            let bearing = i as f64 * 360.0 / RING_STEPS as f64;
            let bin = ((bearing / bin_width) as usize).min(n_bins - 1);
            resolve(bin)
        })
        .collect()
}

/// KNN in the sensor-centered plane (km units so angle and range trade off
/// on a natural scale).
fn knn_ring(points: &[SurveyPoint], k: usize, probe_range_m: f64) -> Vec<bool> {
    if points.is_empty() {
        return vec![false; RING_STEPS];
    }
    let k = k.max(1).min(points.len());
    let xy: Vec<(f64, f64, bool)> = points
        .iter()
        .map(|p| {
            let r = p.bearing_deg.to_radians();
            (
                p.range_m / 1_000.0 * r.sin(),
                p.range_m / 1_000.0 * r.cos(),
                p.observed,
            )
        })
        .collect();
    (0..RING_STEPS)
        .map(|i| {
            let bearing = (i as f64 * 360.0 / RING_STEPS as f64).to_radians();
            let qx = probe_range_m / 1_000.0 * bearing.sin();
            let qy = probe_range_m / 1_000.0 * bearing.cos();
            let mut dists: Vec<(f64, bool)> = xy
                .iter()
                .map(|&(x, y, obs)| ((x - qx).powi(2) + (y - qy).powi(2), obs))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let votes = dists[..k].iter().filter(|&&(_, obs)| obs).count();
            votes * 2 > k
        })
        .collect()
}

enum Loss {
    Hinge,
    Logistic,
}

/// Harmonic feature map: bearing harmonics × range interaction.
fn features(bearing_deg: f64, range_m: f64) -> [f64; 8] {
    let b = bearing_deg.to_radians();
    let r = (range_m / 100_000.0).min(1.5); // normalized to the survey disc
    [
        1.0,
        b.cos(),
        b.sin(),
        (2.0 * b).cos(),
        (2.0 * b).sin(),
        r,
        r * b.cos(),
        r * b.sin(),
    ]
}

/// Train a linear model by SGD and probe the ring at `probe_range_m`.
fn model_ring(points: &[SurveyPoint], epochs: usize, probe_range_m: f64, loss: Loss) -> Vec<bool> {
    if points.is_empty() {
        return vec![false; RING_STEPS];
    }
    let data: Vec<([f64; 8], f64)> = points
        .iter()
        .map(|p| {
            (
                features(p.bearing_deg, p.range_m),
                if p.observed { 1.0 } else { -1.0 },
            )
        })
        .collect();
    let mut w = [0.0f64; 8];
    let lambda = 1e-3;
    for epoch in 0..epochs.max(1) {
        let lr = 0.5 / (1.0 + epoch as f64 * 0.05);
        // Fixed visiting order keeps training deterministic; the harmonic
        // features make order effects negligible.
        for (x, y) in &data {
            let margin: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() * y;
            let g_scale = match loss {
                Loss::Hinge => {
                    if margin < 1.0 {
                        *y
                    } else {
                        0.0
                    }
                }
                Loss::Logistic => y / (1.0 + margin.exp()),
            };
            for (wi, xi) in w.iter_mut().zip(x) {
                *wi = *wi * (1.0 - lr * lambda) + lr * g_scale * xi;
            }
        }
    }
    (0..RING_STEPS)
        .map(|i| {
            let bearing = i as f64 * 360.0 / RING_STEPS as f64;
            let x = features(bearing, probe_range_m);
            w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>() > 0.0
        })
        .collect()
}

/// The widest wrap-aware run of `true` in the ring, as a sector.
fn widest_open_sector(ring: &[bool]) -> Sector {
    let n = ring.len();
    if n == 0 || ring.iter().all(|&b| !b) {
        return Sector::new(0.0, 0.0);
    }
    if ring.iter().all(|&b| b) {
        return Sector::full();
    }
    let step = 360.0 / n as f64;
    let (mut best_start, mut best_len) = (0usize, 0usize);
    let (mut cur_start, mut cur_len) = (0usize, 0usize);
    // Scan twice around to handle wrap; cap runs at n.
    for i in 0..2 * n {
        if ring[i % n] {
            if cur_len == 0 {
                cur_start = i;
            }
            cur_len += 1;
            if cur_len > best_len {
                best_len = cur_len;
                best_start = cur_start;
            }
        } else {
            cur_len = 0;
        }
    }
    let best_len = best_len.min(n);
    Sector::new((best_start % n) as f64 * step, best_len as f64 * step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_adsb::IcaoAddress;

    /// Synthetic survey: observed iff inside `open` and within `max_range`,
    /// or very close (< 15 km) regardless — the paper's reception pattern.
    fn synthetic_points(open: &Sector, max_range_m: f64, n: usize) -> Vec<SurveyPoint> {
        (0..n)
            .map(|i| {
                let bearing = (i as f64 * 360.0 / n as f64) % 360.0;
                let range = 5_000.0 + (i as f64 * 7_919.0) % 95_000.0;
                let observed =
                    (open.contains(bearing) && range <= max_range_m) || range < 15_000.0;
                SurveyPoint {
                    icao: IcaoAddress::new(i as u32 + 1),
                    callsign: format!("SYN{i:03}"),
                    bearing_deg: bearing,
                    range_m: range,
                    altitude_m: 9_000.0,
                    observed,
                    messages: usize::from(observed) * 10,
                    mean_rssi_dbfs: observed.then_some(-30.0),
                }
            })
            .collect()
    }

    #[test]
    fn histogram_recovers_west_sector() {
        let truth = Sector::centered(270.0, 120.0);
        let points = synthetic_points(&truth, 95_000.0, 400);
        let est = FovEstimator::default().estimate(&points);
        assert!(est.iou(&truth) > 0.7, "IoU {}", est.iou(&truth));
    }

    #[test]
    fn all_methods_beat_chance_on_sector_world() {
        let truth = Sector::centered(135.0, 90.0);
        let points = synthetic_points(&truth, 90_000.0, 400);
        for method in [
            FovMethod::default_histogram(),
            FovMethod::default_knn(),
            FovMethod::default_svm(),
            FovMethod::default_logistic(),
        ] {
            let est = FovEstimator::new(method).estimate(&points);
            assert!(
                est.iou(&truth) > 0.5,
                "{} IoU only {}",
                method.name(),
                est.iou(&truth)
            );
        }
    }

    #[test]
    fn blocked_everywhere_yields_empty_sector() {
        let truth = Sector::new(0.0, 0.0);
        let points = synthetic_points(&truth, 0.0, 300);
        let est = FovEstimator::default().estimate(&points);
        assert_eq!(est.estimated.width_deg, 0.0);
        assert!(est.open_fraction() < 0.1);
    }

    #[test]
    fn open_everywhere_yields_full_circle() {
        let truth = Sector::full();
        let points = synthetic_points(&truth, 100_000.0, 300);
        let est = FovEstimator::default().estimate(&points);
        assert!(est.estimated.width_deg >= 355.0, "{:?}", est.estimated);
        assert!(est.open_fraction() > 0.95);
    }

    #[test]
    fn wrap_around_sector_recovered() {
        // Open sector straddling north: 330°–30°.
        let truth = Sector::new(330.0, 60.0);
        let points = synthetic_points(&truth, 90_000.0, 400);
        let est = FovEstimator::default().estimate(&points);
        assert!(est.iou(&truth) > 0.5, "IoU {}", est.iou(&truth));
        assert!(truth.contains(est.estimated.center_deg()));
    }

    #[test]
    fn empty_points_safe() {
        for method in [
            FovMethod::default_histogram(),
            FovMethod::default_knn(),
            FovMethod::default_svm(),
            FovMethod::default_logistic(),
        ] {
            let est = FovEstimator::new(method).estimate(&[]);
            assert_eq!(est.estimated.width_deg, 0.0, "{}", method.name());
        }
    }

    #[test]
    fn widest_sector_helper() {
        assert_eq!(widest_open_sector(&[]).width_deg, 0.0);
        let ring = vec![true, false, true, true];
        // 4 bins of 90°: the widest run is bins 2–3 wrapping into 0.
        let s = widest_open_sector(&ring);
        assert_eq!(s.start_deg, 180.0);
        assert_eq!(s.width_deg, 270.0);
    }

    #[test]
    fn close_in_multipath_does_not_fake_openness() {
        // Everything < 15 km observed everywhere (the paper's multipath
        // effect); the estimators must not call the whole circle open.
        let truth = Sector::centered(90.0, 60.0);
        let points = synthetic_points(&truth, 90_000.0, 500);
        let est = FovEstimator::default().estimate(&points);
        assert!(
            est.open_fraction() < 0.4,
            "multipath fooled the estimator: {}",
            est.open_fraction()
        );
    }
}
