//! `aircal-core`: automatic calibration of crowd-sourced spectrum sensors
//! via signals of opportunity — the primary contribution of *"Automatic
//! Calibration in Crowd-sourced Network of Spectrum Sensors"* (HotNets '23).
//!
//! The library answers two questions about a sensor node, without touching
//! it and without any cooperating transmitter:
//!
//! 1. **Where can it hear?** ([`survey`], [`fov`]) — run a 30 s ADS-B
//!    capture, match decoded ICAO addresses against a flight-tracking
//!    ground truth, and estimate the angular field of view from which
//!    aircraft were (not) received.
//! 2. **At which frequencies?** ([`freqprofile`]) — measure known cellular
//!    and broadcast-TV sources across the claimed band and compare against
//!    the unobstructed expectation.
//!
//! On top of those sit the paper's §3.2/§5 derived capabilities:
//! indoor/outdoor classification ([`classifier`]), trust scoring and
//! fabrication detection ([`trust`]), measurement scheduling
//! ([`scheduler`]), whole-fleet auditing ([`fleet`]), and serializable
//! reports ([`report`]).
//!
//! # Quickstart
//!
//! ```
//! use aircal_core::engine::Calibrator;
//! use aircal_env::{Scenario, ScenarioKind};
//!
//! let scenario = Scenario::build(ScenarioKind::Rooftop);
//! let report = Calibrator::quick().calibrate(&scenario.world, &scenario.site, 42);
//! assert!(report.fov.estimated.width_deg > 0.0);
//! ```

pub mod classifier;
pub mod engine;
pub mod fleet;
pub mod fov;
pub mod freqprofile;
pub mod history;
pub mod repeat;
pub mod report;
pub mod robust;
pub mod scheduler;
pub mod survey;
pub mod trust;
pub mod wal;

pub use engine::Calibrator;
pub use fov::{FovEstimate, FovEstimator};
pub use report::CalibrationReport;
pub use survey::{run_survey, SurveyConfig, SurveyPoint, SurveyResult};
pub use wal::{Journal, OpenReport, WalError, WalRecord};
