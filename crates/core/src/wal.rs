//! Write-ahead journal for the cloud calibration service.
//!
//! The cloud must survive a crash mid-campaign without double-applying
//! trust deltas or losing audit progress. The discipline is classic
//! write-ahead logging: every audit-round effect (a step outcome, a
//! trust delta, a ladder transition, a profile update, an applied
//! report) is appended to the journal — and synced — *before* it is
//! applied to the in-memory registry. Recovery restores the latest
//! registry snapshot and replays the journal's suffix on top, arriving
//! at a bit-identical state.
//!
//! # Frame format
//!
//! The journal is a sequence of segments; each segment is a byte stream
//! of CRC-framed, length-prefixed records:
//!
//! ```text
//! 0xA7 marker u8 | payload_len u32 | crc32 u32 | payload …
//! ```
//!
//! (integers little-endian; the CRC covers the payload only, the marker
//! and length guard the frame structure itself). A crash can tear the
//! tail of the last segment mid-write; [`Journal::open`] therefore
//! truncates at the first invalid frame — bad marker, impossible
//! length, CRC mismatch, or undecodable payload — and recovers the
//! longest valid prefix. It never panics on arbitrary bytes.
//!
//! # Segment rotation
//!
//! Appends rotate to a fresh segment once the active one exceeds
//! [`Journal::segment_cap`] bytes. [`Journal::truncate_before_seal`]
//! drops every sealed segment — the rotation point is where a registry
//! snapshot makes the prefix redundant.

use std::fmt;

/// Frame marker byte. Not a magic string: a single byte keeps the
/// frame overhead small while still catching most torn/garbled tails
/// before the CRC has to.
pub const FRAME_MARKER: u8 = 0xA7;

/// Frame header bytes before the payload: marker + len + crc.
pub const FRAME_HEADER: usize = 1 + 4 + 4;

/// Hard per-record payload ceiling. A length field above this is
/// corruption, not an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// CRC-32 (IEEE 802.3, reflected), bitwise — same codec as the ACSN
/// snapshots, duplicated here so `aircal-core` stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for b in bytes {
        crc ^= *b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a journal record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The byte stream ended before the record structure did.
    Truncated,
    /// An enum tag or field decoded to an impossible value.
    Malformed(&'static str),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Truncated => write!(f, "journal record truncated"),
            WalError::Malformed(what) => write!(f, "malformed journal field: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

// ---------------------------------------------------------------------------
// Typed records
// ---------------------------------------------------------------------------

/// One durable audit-round effect, journaled before it is applied.
///
/// Node identity is carried two ways, matching the two cloud
/// implementations: the threaded `aircal-net` cloud keys its registry
/// by name (`String`), the discrete-event engine by index (`u64`).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An audit round began: its commission seed and virtual tick.
    RoundStarted { seed: u64, tick: u64 },
    /// One audit step finished (or failed) against a named node.
    StepOutcome {
        node: String,
        step: String,
        ok: bool,
        /// Wire attempts the step consumed, retries included.
        attempts: u64,
    },
    /// A trust movement for a named node: final score and the penalty
    /// delta, both as IEEE-754 bit patterns (bit-exact replay).
    TrustDelta {
        node: String,
        score_bits: u64,
        delta_bits: u64,
    },
    /// A health-ladder transition, as severities.
    LadderTransition {
        node: String,
        from: u8,
        to: u8,
        consecutive: u32,
    },
    /// A node's frequency profile was (re)assembled; `fingerprint` is
    /// the canonical report fingerprint.
    ProfileUpdate { node: String, fingerprint: u64 },
    /// Upsert of one node's full registry state, as opaque codec-owned
    /// bytes (the `aircal-net` ACSN per-node encoding). Replaying the
    /// suffix of these after a snapshot reproduces the registry
    /// bit-for-bit.
    NodeState { node: String, state: Vec<u8> },
    /// A measurement dispatch left the cloud (engine-side, by index).
    Dispatch {
        node: u64,
        kind: u8,
        seq: u64,
        tick: u64,
    },
    /// A measurement report passed the dedup window and was applied.
    ReportApplied {
        node: u64,
        kind: u8,
        seq: u64,
        value_bits: u64,
        tick: u64,
    },
    /// An audit round's per-node effect was applied (engine-side).
    AuditApplied {
        node: u64,
        trust_bits: u64,
        health: u8,
    },
    /// A registry snapshot was taken; the journal prefix before this
    /// point is redundant. `state_crc` is the CRC-32 of the snapshot
    /// bytes, chaining journal and snapshot together.
    SnapshotTaken { tick: u64, state_crc: u32 },
    /// An audit round finished, with how many effects it journaled.
    RoundCompleted { seed: u64, effects: u32 },
    /// A delivery reached the cloud garbled and was discarded; the
    /// dispatch it answers is known-dead (immediately reschedulable),
    /// which is cloud state and so must survive a crash.
    DeliveryFailed {
        node: u64,
        kind: u8,
        seq: u64,
        tick: u64,
    },
}

// Variant tags. New variants append; tags are never reused.
const TAG_ROUND_STARTED: u8 = 1;
const TAG_STEP_OUTCOME: u8 = 2;
const TAG_TRUST_DELTA: u8 = 3;
const TAG_LADDER_TRANSITION: u8 = 4;
const TAG_PROFILE_UPDATE: u8 = 5;
const TAG_NODE_STATE: u8 = 6;
const TAG_DISPATCH: u8 = 7;
const TAG_REPORT_APPLIED: u8 = 8;
const TAG_AUDIT_APPLIED: u8 = 9;
const TAG_SNAPSHOT_TAKEN: u8 = 10;
const TAG_ROUND_COMPLETED: u8 = 11;
const TAG_DELIVERY_FAILED: u8 = 12;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(WalError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, WalError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(WalError::Truncated);
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| WalError::Malformed("utf-8 string"))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WalError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(WalError::Truncated);
        }
        Ok(self.take(n)?.to_vec())
    }
    fn done(&self) -> Result<(), WalError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WalError::Malformed("trailing bytes in record"))
        }
    }
}

impl WalRecord {
    /// Serialize the record payload (frame applied by the journal).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(48);
        match self {
            WalRecord::RoundStarted { seed, tick } => {
                b.push(TAG_ROUND_STARTED);
                put_u64(&mut b, *seed);
                put_u64(&mut b, *tick);
            }
            WalRecord::StepOutcome {
                node,
                step,
                ok,
                attempts,
            } => {
                b.push(TAG_STEP_OUTCOME);
                put_str(&mut b, node);
                put_str(&mut b, step);
                b.push(*ok as u8);
                put_u64(&mut b, *attempts);
            }
            WalRecord::TrustDelta {
                node,
                score_bits,
                delta_bits,
            } => {
                b.push(TAG_TRUST_DELTA);
                put_str(&mut b, node);
                put_u64(&mut b, *score_bits);
                put_u64(&mut b, *delta_bits);
            }
            WalRecord::LadderTransition {
                node,
                from,
                to,
                consecutive,
            } => {
                b.push(TAG_LADDER_TRANSITION);
                put_str(&mut b, node);
                b.push(*from);
                b.push(*to);
                put_u32(&mut b, *consecutive);
            }
            WalRecord::ProfileUpdate { node, fingerprint } => {
                b.push(TAG_PROFILE_UPDATE);
                put_str(&mut b, node);
                put_u64(&mut b, *fingerprint);
            }
            WalRecord::NodeState { node, state } => {
                b.push(TAG_NODE_STATE);
                put_str(&mut b, node);
                put_bytes(&mut b, state);
            }
            WalRecord::Dispatch {
                node,
                kind,
                seq,
                tick,
            } => {
                b.push(TAG_DISPATCH);
                put_u64(&mut b, *node);
                b.push(*kind);
                put_u64(&mut b, *seq);
                put_u64(&mut b, *tick);
            }
            WalRecord::ReportApplied {
                node,
                kind,
                seq,
                value_bits,
                tick,
            } => {
                b.push(TAG_REPORT_APPLIED);
                put_u64(&mut b, *node);
                b.push(*kind);
                put_u64(&mut b, *seq);
                put_u64(&mut b, *value_bits);
                put_u64(&mut b, *tick);
            }
            WalRecord::AuditApplied {
                node,
                trust_bits,
                health,
            } => {
                b.push(TAG_AUDIT_APPLIED);
                put_u64(&mut b, *node);
                put_u64(&mut b, *trust_bits);
                b.push(*health);
            }
            WalRecord::SnapshotTaken { tick, state_crc } => {
                b.push(TAG_SNAPSHOT_TAKEN);
                put_u64(&mut b, *tick);
                put_u32(&mut b, *state_crc);
            }
            WalRecord::RoundCompleted { seed, effects } => {
                b.push(TAG_ROUND_COMPLETED);
                put_u64(&mut b, *seed);
                put_u32(&mut b, *effects);
            }
            WalRecord::DeliveryFailed {
                node,
                kind,
                seq,
                tick,
            } => {
                b.push(TAG_DELIVERY_FAILED);
                put_u64(&mut b, *node);
                b.push(*kind);
                put_u64(&mut b, *seq);
                put_u64(&mut b, *tick);
            }
        }
        b
    }

    /// Decode one record payload. Every failure is a typed error; this
    /// never panics on arbitrary bytes.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, WalError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let rec = match c.u8()? {
            TAG_ROUND_STARTED => WalRecord::RoundStarted {
                seed: c.u64()?,
                tick: c.u64()?,
            },
            TAG_STEP_OUTCOME => WalRecord::StepOutcome {
                node: c.str()?,
                step: c.str()?,
                ok: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WalError::Malformed("bool")),
                },
                attempts: c.u64()?,
            },
            TAG_TRUST_DELTA => WalRecord::TrustDelta {
                node: c.str()?,
                score_bits: c.u64()?,
                delta_bits: c.u64()?,
            },
            TAG_LADDER_TRANSITION => WalRecord::LadderTransition {
                node: c.str()?,
                from: c.u8()?,
                to: c.u8()?,
                consecutive: c.u32()?,
            },
            TAG_PROFILE_UPDATE => WalRecord::ProfileUpdate {
                node: c.str()?,
                fingerprint: c.u64()?,
            },
            TAG_NODE_STATE => WalRecord::NodeState {
                node: c.str()?,
                state: c.bytes()?,
            },
            TAG_DISPATCH => WalRecord::Dispatch {
                node: c.u64()?,
                kind: c.u8()?,
                seq: c.u64()?,
                tick: c.u64()?,
            },
            TAG_REPORT_APPLIED => WalRecord::ReportApplied {
                node: c.u64()?,
                kind: c.u8()?,
                seq: c.u64()?,
                value_bits: c.u64()?,
                tick: c.u64()?,
            },
            TAG_AUDIT_APPLIED => WalRecord::AuditApplied {
                node: c.u64()?,
                trust_bits: c.u64()?,
                health: c.u8()?,
            },
            TAG_SNAPSHOT_TAKEN => WalRecord::SnapshotTaken {
                tick: c.u64()?,
                state_crc: c.u32()?,
            },
            TAG_ROUND_COMPLETED => WalRecord::RoundCompleted {
                seed: c.u64()?,
                effects: c.u32()?,
            },
            TAG_DELIVERY_FAILED => WalRecord::DeliveryFailed {
                node: c.u64()?,
                kind: c.u8()?,
                seq: c.u64()?,
                tick: c.u64()?,
            },
            _ => return Err(WalError::Malformed("record tag")),
        };
        c.done()?;
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------------

/// What [`Journal::open`] found in a byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// Records recovered (the longest valid prefix).
    pub recovered: u64,
    /// Bytes discarded from the torn tail (0 for a clean journal).
    pub truncated_bytes: u64,
}

/// A segmented, CRC-framed write-ahead journal.
///
/// Storage is plain byte vectors so the same machinery backs both the
/// in-process engine (bytes live in memory) and a file-backed
/// deployment (each segment is one file). Durability is modeled by
/// [`Journal::sync`]: effects must not be applied before the sync that
/// covers their append returns.
#[derive(Debug, Clone)]
pub struct Journal {
    /// Sealed segments (oldest first) plus the active tail segment.
    segments: Vec<Vec<u8>>,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_cap: usize,
    /// Records appended over this journal's lifetime.
    appends: u64,
    /// Sync barriers issued.
    syncs: u64,
    /// Appends not yet covered by a sync.
    unsynced: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new(64 * 1024)
    }
}

impl Journal {
    /// An empty journal with the given segment-rotation threshold.
    pub fn new(segment_cap: usize) -> Self {
        Self {
            segments: vec![Vec::new()],
            segment_cap: segment_cap.max(FRAME_HEADER + 1),
            appends: 0,
            syncs: 0,
            unsynced: 0,
        }
    }

    /// Frame and append one record, rotating segments at the cap.
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode();
        let active = self.segments.last_mut().expect("journal has a tail");
        if !active.is_empty() && active.len() + FRAME_HEADER + payload.len() > self.segment_cap {
            self.segments.push(Vec::new());
        }
        let active = self.segments.last_mut().expect("journal has a tail");
        active.push(FRAME_MARKER);
        active.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        active.extend_from_slice(&crc32(&payload).to_le_bytes());
        active.extend_from_slice(&payload);
        self.appends += 1;
        self.unsynced += 1;
    }

    /// Durability barrier: everything appended so far survives a crash.
    /// Returns how many appends this sync covered.
    pub fn sync(&mut self) -> u64 {
        self.syncs += 1;
        std::mem::take(&mut self.unsynced)
    }

    /// Records appended over this journal's lifetime.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Sync barriers issued.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Segments currently held (sealed + active tail).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total framed bytes across all segments.
    pub fn len_bytes(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// The journal as one contiguous byte stream (what a crash leaves
    /// on disk, segments concatenated oldest-first).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len_bytes());
        for s in &self.segments {
            out.extend_from_slice(s);
        }
        out
    }

    /// Drop every sealed segment, keeping only the active tail. Call
    /// after persisting a registry snapshot: the sealed prefix is
    /// redundant from that point on.
    pub fn truncate_before_seal(&mut self) {
        let tail = self.segments.pop().expect("journal has a tail");
        self.segments.clear();
        self.segments.push(tail);
    }

    /// Drop everything: the snapshot just taken covers the entire
    /// journal contents (used at clean checkpoint boundaries).
    pub fn reset(&mut self) {
        self.segments.clear();
        self.segments.push(Vec::new());
    }

    /// Decode every record in order. The journal's own frames are
    /// always valid (it wrote them); this cannot fail.
    pub fn records(&self) -> Vec<WalRecord> {
        let (records, _) = scan(&self.to_bytes());
        records
    }

    /// Open a journal from a possibly torn byte stream: recover the
    /// longest valid prefix of records, truncating the tail at the
    /// first bad frame. Never panics, whatever the bytes.
    pub fn open(bytes: &[u8], segment_cap: usize) -> (Journal, OpenReport) {
        let (records, valid_len) = scan(bytes);
        let report = OpenReport {
            recovered: records.len() as u64,
            truncated_bytes: (bytes.len() - valid_len) as u64,
        };
        let mut journal = Journal::new(segment_cap);
        for r in &records {
            journal.append(r);
        }
        // Reopened records are already durable.
        journal.sync();
        (journal, report)
    }
}

/// Scan a byte stream for valid frames; returns the decoded records and
/// the byte length of the valid prefix.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER || rest[0] != FRAME_MARKER {
            break;
        }
        let len = u32::from_le_bytes(rest[1..5].try_into().unwrap()) as usize;
        if len > MAX_RECORD_LEN || rest.len() < FRAME_HEADER + len {
            break;
        }
        let crc_stored = u32::from_le_bytes(rest[5..9].try_into().unwrap());
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc_stored {
            break;
        }
        match WalRecord::decode(payload) {
            Ok(r) => records.push(r),
            Err(_) => break,
        }
        pos += FRAME_HEADER + len;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RoundStarted { seed: 777, tick: 50 },
            WalRecord::StepOutcome {
                node: "rooftop".into(),
                step: "survey".into(),
                ok: true,
                attempts: 3,
            },
            WalRecord::TrustDelta {
                node: "rooftop".into(),
                score_bits: 0.875f64.to_bits(),
                delta_bits: (-0.05f64).to_bits(),
            },
            WalRecord::LadderTransition {
                node: "flaky".into(),
                from: 0,
                to: 2,
                consecutive: 1,
            },
            WalRecord::ProfileUpdate {
                node: "rooftop".into(),
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            },
            WalRecord::NodeState {
                node: "rooftop".into(),
                state: vec![1, 2, 3, 4, 5],
            },
            WalRecord::Dispatch {
                node: 17,
                kind: 2,
                seq: 9,
                tick: 95,
            },
            WalRecord::ReportApplied {
                node: 17,
                kind: 2,
                seq: 9,
                value_bits: (-61.25f64).to_bits(),
                tick: 97,
            },
            WalRecord::AuditApplied {
                node: 17,
                trust_bits: 0.53f64.to_bits(),
                health: 1,
            },
            WalRecord::SnapshotTaken {
                tick: 100,
                state_crc: 0x1234_5678,
            },
            WalRecord::RoundCompleted {
                seed: 777,
                effects: 9,
            },
            WalRecord::DeliveryFailed {
                node: 17,
                kind: 1,
                seq: 10,
                tick: 99,
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for r in sample_records() {
            let bytes = r.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn journal_append_and_replay() {
        let mut j = Journal::new(1 << 16);
        for r in sample_records() {
            j.append(&r);
        }
        assert_eq!(j.sync(), sample_records().len() as u64);
        assert_eq!(j.records(), sample_records());
        assert_eq!(j.appends(), sample_records().len() as u64);
        assert_eq!(j.syncs(), 1);
    }

    #[test]
    fn segments_rotate_at_the_cap_and_seal_truncation_keeps_the_tail() {
        let mut j = Journal::new(64);
        for _ in 0..20 {
            j.append(&WalRecord::RoundStarted { seed: 1, tick: 2 });
        }
        assert!(j.segment_count() > 1, "64-byte cap must force rotation");
        let before = j.records().len();
        j.truncate_before_seal();
        assert_eq!(j.segment_count(), 1);
        assert!(j.records().len() < before, "sealed segments dropped");
    }

    #[test]
    fn open_recovers_a_clean_journal_bit_identically() {
        let mut j = Journal::new(128);
        for r in sample_records() {
            j.append(&r);
        }
        let (back, report) = Journal::open(&j.to_bytes(), 128);
        assert_eq!(report.recovered, sample_records().len() as u64);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(back.records(), j.records());
    }

    #[test]
    fn every_truncation_recovers_the_longest_valid_prefix() {
        let mut j = Journal::new(1 << 16);
        for r in sample_records() {
            j.append(&r);
        }
        let bytes = j.to_bytes();
        // Frame boundaries: prefix sums of framed record sizes.
        let mut boundaries = vec![0usize];
        for r in sample_records() {
            boundaries.push(boundaries.last().unwrap() + FRAME_HEADER + r.encode().len());
        }
        for n in 0..bytes.len() {
            let (back, report) = Journal::open(&bytes[..n], 1 << 16);
            // Longest valid prefix: every whole frame before the cut.
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= n).count();
            assert_eq!(
                back.records().len(),
                expect,
                "truncation to {n} bytes recovered wrong prefix"
            );
            assert_eq!(report.recovered as usize, expect);
        }
    }

    #[test]
    fn every_bit_flip_never_panics_and_never_gains_records() {
        let mut j = Journal::new(1 << 16);
        for r in sample_records().into_iter().take(4) {
            j.append(&r);
        }
        let bytes = j.to_bytes();
        let clean = sample_records().len().min(4);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                let (back, _) = Journal::open(&bad, 1 << 16);
                assert!(
                    back.records().len() <= clean,
                    "bit flip at byte {i} bit {bit} grew the journal"
                );
            }
        }
    }

    #[test]
    fn arbitrary_garbage_opens_empty() {
        let garbage: Vec<u8> = (0..512u32).map(|i| (i * 37 % 251) as u8).collect();
        let (j, report) = Journal::open(&garbage, 1 << 16);
        assert!(j.records().is_empty());
        assert_eq!(report.truncated_bytes, garbage.len() as u64);
    }

    #[test]
    fn oversized_length_field_is_corruption_not_allocation() {
        let mut bytes = vec![FRAME_MARKER];
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let (j, _) = Journal::open(&bytes, 1 << 16);
        assert!(j.records().is_empty());
    }
}
