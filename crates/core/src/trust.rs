//! Trust scoring and fabrication detection (§2, §5 "Establishing trust").
//!
//! "Since node operators are paid for these services, there is a potential
//! incentive to provide fabricated or incorrect data." A node can cheat in
//! two observable ways: claim receptions that never happened, or report
//! data inconsistent with physics. Both leave fingerprints the auditor can
//! check against the independent ground truth:
//!
//! * **Ghost aircraft** — decoded ICAOs absent from the tracking service;
//! * **Position inconsistency** — CPR-decoded positions far from where the
//!   tracking service saw the aircraft;
//! * **RSSI physics** — reported signal strengths uncorrelated with range
//!   (real receptions follow a 1/r² trend; invented ones rarely do).

use crate::freqprofile::FrequencyProfile;
use crate::survey::SurveyResult;
use aircal_aircraft::TrafficSim;
use serde::{Deserialize, Serialize};

/// Component scores (each 0–1) and the combined trust value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustScore {
    /// Sky coverage: fraction of the circle with long-range visibility.
    pub fov_coverage: f64,
    /// Spectral coverage: fraction of bands with any measurement.
    pub spectral_coverage: f64,
    /// Consistency of decoded positions with the ground truth, 0–1.
    pub position_consistency: f64,
    /// Plausibility of the RSSI-vs-range trend, 0–1.
    pub rssi_plausibility: f64,
    /// 1 − fraction of messages from aircraft unknown to the ground truth.
    pub ghost_free: f64,
    /// Combined 0–100 score.
    pub score: f64,
    /// Human-readable flags raised during the audit.
    pub flags: Vec<String>,
}

/// Clamp a component score to `[0, 1]`; non-finite inputs (NaN/Inf from
/// corrupted measurements) earn zero credit rather than propagating.
fn clamp01(x: f64) -> f64 {
    if x.is_finite() {
        x.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

impl TrustScore {
    /// Is this node trustworthy enough to rent? (Threshold from the
    /// component weighting: a healthy outdoor node scores ≥ 70.)
    pub fn is_trustworthy(&self) -> bool {
        self.score >= 50.0 && self.flags.is_empty()
    }

    /// Dock the score for an evidence source that never arrived (an
    /// audit step that failed even with retries). Missing evidence
    /// cannot earn trust: the node keeps its verdict but is penalized
    /// and flagged rather than silently skipped, so a flaky-but-honest
    /// node ranks below a complete one and the flag blocks marketplace
    /// approval until a clean audit.
    pub fn penalize_missing_evidence(&mut self, evidence: &str) {
        if !self.score.is_finite() {
            self.score = 0.0;
        }
        self.score = (self.score - 20.0).max(0.0);
        self.flags.push(format!("missing evidence: {evidence}"));
    }

    /// Dock the score for disagreeing with the fleet's robustly fused
    /// consensus (cross-sensor residual beyond tolerance). Like
    /// [`TrustScore::penalize_missing_evidence`], the flag blocks
    /// marketplace approval until a clean audit.
    pub fn penalize_fusion_residual(&mut self, residual_db: f64) {
        if !self.score.is_finite() {
            self.score = 0.0;
        }
        self.score = (self.score - 15.0).max(0.0);
        self.flags
            .push(format!("fusion residual {residual_db:.1} dB vs fleet consensus"));
    }
}

/// The auditor.
#[derive(Debug, Clone)]
pub struct TrustAuditor {
    /// Positions decoded further than this from ground truth are
    /// inconsistent, meters (stale truth is good to ~2.6 km; CPR to ~10 m).
    pub position_tolerance_m: f64,
}

impl Default for TrustAuditor {
    fn default() -> Self {
        Self {
            position_tolerance_m: 5_000.0,
        }
    }
}

impl TrustAuditor {
    /// Audit one node from its survey, frequency profile, and the traffic
    /// ground truth.
    pub fn audit(
        &self,
        survey: &SurveyResult,
        profile: &FrequencyProfile,
        traffic: &TrafficSim,
        fov_open_fraction: f64,
    ) -> TrustScore {
        let mut flags = Vec::new();

        // A node that decoded nothing at all provides no auditable (or
        // rentable) evidence; its integrity components cannot earn credit.
        if survey.total_messages == 0 {
            flags.push("no ADS-B receptions at all".into());
            return TrustScore {
                fov_coverage: clamp01(fov_open_fraction),
                spectral_coverage: clamp01(profile.usable_fraction()),
                position_consistency: 0.0,
                rssi_plausibility: 0.0,
                ghost_free: 1.0,
                score: 100.0
                    * (0.15 * clamp01(fov_open_fraction)
                        + 0.15 * clamp01(profile.usable_fraction())),
                flags,
            };
        }

        // Ghost messages: decoded ICAOs the tracking service never saw.
        let ghost_free =
            clamp01(1.0 - survey.unmatched_messages as f64 / survey.total_messages as f64);
        if ghost_free < 0.7 {
            flags.push(format!(
                "{}% of messages from aircraft unknown to ground truth",
                ((1.0 - ghost_free) * 100.0).round()
            ));
        }

        // Position consistency: CPR decodes vs (stale) ground-truth tracks.
        let position_consistency = if survey.decoded_positions.is_empty() {
            // No decodes at all: nothing to verify; neutral-low.
            0.5
        } else {
            let mut ok = 0usize;
            for (icao, pos) in &survey.decoded_positions {
                // Unknown ICAOs are counted via ghost_free instead.
                if let Some(f) = traffic.by_icao(*icao) {
                    let best = (0..=survey.config.duration_s as usize)
                        .map(|t| f.position_at(t as f64).distance_m(pos))
                        .fold(f64::INFINITY, f64::min);
                    if best <= self.position_tolerance_m {
                        ok += 1;
                    }
                }
            }
            clamp01(ok as f64 / survey.decoded_positions.len() as f64)
        };
        if position_consistency < 0.5 {
            flags.push("decoded positions inconsistent with ground truth".into());
        }

        // RSSI physics: decoded signal strength should fall with range.
        let rssi_plausibility = clamp01(rssi_range_plausibility(survey));
        if rssi_plausibility < 0.3 {
            flags.push("RSSI does not follow a distance trend".into());
        }

        let fov_coverage = clamp01(fov_open_fraction);
        let spectral_coverage = clamp01(profile.usable_fraction());

        // Weighted blend: integrity components dominate; coverage matters
        // but a well-behaved partially-obstructed node is still usable.
        // Every component is clamped to [0, 1] above, so the blend stays
        // finite in [0, 100] no matter how corrupted the inputs were.
        let score = (100.0
            * (0.15 * fov_coverage
                + 0.15 * spectral_coverage
                + 0.25 * position_consistency
                + 0.15 * rssi_plausibility
                + 0.30 * ghost_free))
            .clamp(0.0, 100.0);

        TrustScore {
            fov_coverage,
            spectral_coverage,
            position_consistency,
            rssi_plausibility,
            ghost_free,
            score,
            flags,
        }
    }
}

/// Score in [0, 1] for how well observed RSSIs follow the expected
/// −20·log₁₀(range) trend (Pearson correlation mapped to [0,1]; too few
/// points → neutral 0.5).
fn rssi_range_plausibility(survey: &SurveyResult) -> f64 {
    let pts: Vec<(f64, f64)> = survey
        .points
        .iter()
        .filter_map(|p| {
            p.mean_rssi_dbfs
                .filter(|r| r.is_finite() && p.range_m.is_finite())
                .map(|r| (-20.0 * (p.range_m.max(1.0)).log10(), r))
        })
        .collect();
    if pts.len() < 5 {
        return 0.5;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let cov = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
    let vx = pts.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>();
    let vy = pts.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>();
    if vx <= 0.0 || vy <= 0.0 {
        return 0.5;
    }
    let r = cov / (vx * vy).sqrt();
    ((r + 1.0) / 2.0).clamp(0.0, 1.0)
}

/// Fabricate a survey in which the operator claims to have observed every
/// ground-truth aircraft at implausibly uniform strength, plus `extra_ghosts`
/// invented aircraft. Used to exercise the auditor (and by the fault-
/// injection bench).
pub fn fabricate_survey(honest: &SurveyResult, extra_ghosts: usize) -> SurveyResult {
    let mut fake = honest.clone();
    for p in &mut fake.points {
        p.observed = true;
        p.messages = p.messages.max(10);
        p.mean_rssi_dbfs = Some(-28.0); // suspiciously uniform
    }
    fake.total_messages += extra_ghosts * 10;
    fake.unmatched_messages += extra_ghosts * 10;
    // Fabricated position claims: far from any real track.
    for g in 0..extra_ghosts {
        let icao = aircal_adsb::IcaoAddress::new(0xF00000 + g as u32);
        let pos = aircal_geo::LatLon::new(10.0 + g as f64, 10.0, 9_000.0);
        fake.decoded_positions.push((icao, pos));
    }
    fake
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqprofile::{BandMeasurement, SourceKind};
    use crate::survey::{run_survey, SurveyConfig};
    use aircal_aircraft::TrafficConfig;
    use aircal_env::{Scenario, ScenarioKind};

    fn profile_stub(usable: usize, total: usize) -> FrequencyProfile {
        FrequencyProfile {
            bands: (0..total)
                .map(|i| BandMeasurement {
                    label: format!("b{i}"),
                    freq_hz: 1e9 + i as f64 * 1e8,
                    source: SourceKind::Cellular,
                    measured_db: (i < usable).then_some(-60.0),
                    expected_clear_db: -58.0,
                })
                .collect(),
            missing_sources: Vec::new(),
        }
    }

    fn honest_setup() -> (SurveyResult, TrafficSim) {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = TrafficSim::generate(
            TrafficConfig {
                count: 40,
                ..TrafficConfig::paper_default(s.site.position)
            },
            11,
        );
        let survey = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 11);
        (survey, traffic)
    }

    use aircal_aircraft::TrafficSim;

    #[test]
    fn honest_open_field_node_trusted() {
        let (survey, traffic) = honest_setup();
        let score =
            TrustAuditor::default().audit(&survey, &profile_stub(11, 11), &traffic, 0.95);
        assert!(score.is_trustworthy(), "score {:?}", score);
        assert!(score.score > 70.0);
        assert!(score.ghost_free > 0.95);
        assert!(score.position_consistency > 0.9);
    }

    #[test]
    fn fabricated_data_flagged() {
        let (survey, traffic) = honest_setup();
        // Invent enough ghost traffic to matter relative to the honest
        // message volume (a cheater padding the roster by ~50%).
        let fake = fabricate_survey(&survey, survey.total_messages / 15);
        let score = TrustAuditor::default().audit(&fake, &profile_stub(11, 11), &traffic, 1.0);
        assert!(!score.is_trustworthy(), "fabrication not caught: {score:?}");
        assert!(!score.flags.is_empty());
        assert!(score.ghost_free < 0.7);
    }

    #[test]
    fn fabricated_positions_inconsistent() {
        let (survey, traffic) = honest_setup();
        let mut fake = survey.clone();
        // Keep the honest messages but lie about where aircraft were.
        for (_, pos) in fake.decoded_positions.iter_mut() {
            *pos = aircal_geo::LatLon::new(0.0, 0.0, 9_000.0);
        }
        let score = TrustAuditor::default().audit(&fake, &profile_stub(11, 11), &traffic, 0.9);
        assert!(score.position_consistency < 0.2);
        assert!(score
            .flags
            .iter()
            .any(|f| f.contains("positions inconsistent")));
    }

    #[test]
    fn rssi_trend_detected() {
        let (survey, _) = honest_setup();
        let plaus = rssi_range_plausibility(&survey);
        assert!(plaus > 0.5, "honest RSSI plausibility {plaus}");
    }

    #[test]
    fn uniform_rssi_suspicious() {
        let (survey, traffic) = honest_setup();
        let fake = fabricate_survey(&survey, 0);
        let plaus = rssi_range_plausibility(&fake);
        assert!(plaus <= 0.55, "uniform RSSI scored {plaus}");
        let _ = traffic;
    }

    #[test]
    fn missing_evidence_penalty_blocks_trust() {
        let (survey, traffic) = honest_setup();
        let mut score =
            TrustAuditor::default().audit(&survey, &profile_stub(11, 11), &traffic, 0.95);
        assert!(score.is_trustworthy());
        let before = score.score;
        score.penalize_missing_evidence("tv");
        assert_eq!(score.score, (before - 20.0).max(0.0));
        assert!(
            score.flags.iter().any(|f| f == "missing evidence: tv"),
            "flags: {:?}",
            score.flags
        );
        assert!(
            !score.is_trustworthy(),
            "a flagged incomplete audit must not be rentable"
        );
        // The penalty floors at zero rather than going negative.
        for _ in 0..10 {
            score.penalize_missing_evidence("cells");
        }
        assert_eq!(score.score, 0.0);
    }

    #[test]
    fn single_nan_band_power_cannot_poison_report() {
        let (mut survey, traffic) = honest_setup();
        // One corrupted band-power sample in the profile and one NaN RSSI
        // point in the survey: the score must stay finite and in range.
        let mut profile = profile_stub(11, 11);
        profile.bands[3].measured_db = Some(f64::NAN);
        profile.bands[5].expected_clear_db = f64::INFINITY;
        if let Some(p) = survey.points.iter_mut().find(|p| p.mean_rssi_dbfs.is_some()) {
            p.mean_rssi_dbfs = Some(f64::NAN);
        }
        let score = TrustAuditor::default().audit(&survey, &profile, &traffic, 0.95);
        for (name, c) in [
            ("fov", score.fov_coverage),
            ("spectral", score.spectral_coverage),
            ("position", score.position_consistency),
            ("rssi", score.rssi_plausibility),
            ("ghost_free", score.ghost_free),
        ] {
            assert!(
                c.is_finite() && (0.0..=1.0).contains(&c),
                "{name} component poisoned: {c}"
            );
        }
        assert!(
            score.score.is_finite() && (0.0..=100.0).contains(&score.score),
            "score poisoned: {}",
            score.score
        );
        // The corrupted bands count as blind, not as credit.
        assert!(score.spectral_coverage <= 10.0 / 11.0 + 1e-12);
        // Downstream ranking still works (is_trustworthy is a total check).
        let _ = score.is_trustworthy();
    }

    #[test]
    fn nan_score_recovers_under_penalty() {
        let (survey, traffic) = honest_setup();
        let mut score =
            TrustAuditor::default().audit(&survey, &profile_stub(11, 11), &traffic, 0.95);
        score.score = f64::NAN; // simulate legacy corruption
        score.penalize_missing_evidence("tv");
        assert_eq!(score.score, 0.0);
        let mut score2 =
            TrustAuditor::default().audit(&survey, &profile_stub(11, 11), &traffic, 0.95);
        score2.score = f64::NAN;
        score2.penalize_fusion_residual(42.0);
        assert_eq!(score2.score, 0.0);
        assert!(score2.flags.iter().any(|f| f.contains("fusion residual")));
    }

    #[test]
    fn dead_node_scores_low_coverage() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = TrafficSim::generate(
            TrafficConfig {
                count: 20,
                ..TrafficConfig::paper_default(s.site.position)
            },
            33,
        );
        let cfg = SurveyConfig {
            fault: aircal_sdr::FrontendFault::Dead,
            ..SurveyConfig::quick()
        };
        let survey = run_survey(&s.world, &s.site, &traffic, &cfg, 33);
        let score =
            TrustAuditor::default().audit(&survey, &profile_stub(0, 11), &traffic, 0.0);
        assert!(score.score < 50.0, "dead node scored {}", score.score);
    }
}
