//! The directional survey: §3.1's procedure, end to end.
//!
//! "We run the dump1090 program on the sensor node for 30 seconds … 15
//! seconds into the measurement, we retrieve all flight data from
//! FlightRadar24 in a radius of 100 km … At the end of the measurement, we
//! go through all flights reported by FlightRadar24 and compare their
//! unique ICAO aircraft address with the messages we decoded. If the
//! flight is found, we mark it as an observed airplane."
//!
//! The pipeline below is that procedure against the simulated world:
//! transponder schedule → per-burst link budget (slow shadowing per
//! aircraft, fast Rician fading per message) → burst-mode IQ rendering →
//! the dump1090-style decoder → ICAO matching against the stale ground
//! truth.

use aircal_adsb::cpr::{self, CprPair};
use aircal_adsb::me::MePayload;
use aircal_adsb::{DecodeScratch, DecodedMessage, Decoder, IcaoAddress, ADSB_FREQ_HZ};
use aircal_aircraft::{GroundTruthService, TrafficSim, TransponderSchedule};
use aircal_env::{GeoScratch, SensorSite, World, WorldIndex};
use aircal_geo::LatLon;
use aircal_rfprop::fading::RicianFading;
use aircal_rfprop::LinkBudget;
use aircal_dsp::{derive_stream_seed, par_map_with, resolve_parallelism};
use aircal_sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig, FrontendFault};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Survey configuration (defaults follow the paper's procedure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Capture duration, seconds (paper: 30).
    pub duration_s: f64,
    /// When during the capture to query the ground truth (paper: 15).
    pub query_time_s: f64,
    /// Ground-truth query radius, meters (paper: 100 km).
    pub radius_m: f64,
    /// Ground-truth service latency, seconds (paper: 10 for FlightRadar24).
    pub ground_truth_latency_s: f64,
    /// Bursts whose SNR falls below this are not rendered (they cannot
    /// pass CRC; skipping them keeps the survey cheap). Set very low to
    /// force full rendering.
    pub skip_below_snr_db: f64,
    /// Worker threads for the burst pipeline (link budgets, IQ
    /// rendering, decoding). `0` means all available cores. Results are
    /// bit-identical for every value — the knob trades wall-clock only.
    pub parallelism: usize,
    /// Front-end fault to inject at the sensor, if any.
    pub fault: FrontendFault,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        Self {
            duration_s: 30.0,
            query_time_s: 15.0,
            radius_m: 100_000.0,
            ground_truth_latency_s: 10.0,
            skip_below_snr_db: 0.0,
            parallelism: 0,
            fault: FrontendFault::None,
        }
    }
}

impl SurveyConfig {
    /// A shorter capture for fast tests (10 s, query at 5 s).
    pub fn quick() -> Self {
        Self {
            duration_s: 10.0,
            query_time_s: 5.0,
            ..Self::default()
        }
    }
}

/// One ground-truth aircraft with its reception outcome — one dot in the
/// paper's Figure 1 (blue if `observed`, gray otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyPoint {
    /// Aircraft address.
    pub icao: IcaoAddress,
    /// Callsign from the ground truth.
    pub callsign: String,
    /// Bearing from the sensor, degrees.
    pub bearing_deg: f64,
    /// Ground range from the sensor, meters.
    pub range_m: f64,
    /// Altitude, meters.
    pub altitude_m: f64,
    /// Was at least one message from this aircraft decoded?
    pub observed: bool,
    /// How many messages were decoded.
    pub messages: usize,
    /// Mean RSSI of decoded messages, dBFS.
    pub mean_rssi_dbfs: Option<f64>,
}

/// The outcome of one directional survey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyResult {
    /// One point per ground-truth aircraft.
    pub points: Vec<SurveyPoint>,
    /// Total messages decoded (all types).
    pub total_messages: usize,
    /// Messages decoded from aircraft *not* in the ground truth (either
    /// beyond the query radius or — when auditing — fabricated).
    pub unmatched_messages: usize,
    /// Scheduled bursts dropped by the `skip_below_snr_db` gate before
    /// rendering (they could never pass CRC; this records how much work
    /// the gate saved and how much of the sky was out of reach).
    pub skipped_low_snr: usize,
    /// Aircraft positions recovered by global CPR decode, sorted by ICAO.
    pub decoded_positions: Vec<(IcaoAddress, LatLon)>,
    /// The configuration used.
    pub config: SurveyConfig,
}

impl SurveyResult {
    /// Fraction of ground-truth aircraft observed.
    pub fn observation_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.observed).count() as f64 / self.points.len() as f64
    }

    /// The farthest observed aircraft's range, meters (0 if none).
    pub fn max_observed_range_m(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.observed)
            .map(|p| p.range_m)
            .fold(0.0, f64::max)
    }
}

/// Run the §3.1 survey procedure.
pub fn run_survey(
    world: &World,
    site: &SensorSite,
    traffic: &TrafficSim,
    config: &SurveyConfig,
    seed: u64,
) -> SurveyResult {
    run_survey_indexed(world, &world.index(), site, traffic, config, seed)
}

/// [`run_survey`] with a caller-owned [`WorldIndex`], so long-lived hosts
/// (network nodes, fleet audits) amortize the index build across surveys.
/// Bit-identical to `run_survey` for an index built from `world`.
pub fn run_survey_indexed(
    world: &World,
    index: &WorldIndex,
    site: &SensorSite,
    traffic: &TrafficSim,
    config: &SurveyConfig,
    seed: u64,
) -> SurveyResult {
    let _span = aircal_obs::span!("survey");
    let threads = resolve_parallelism(config.parallelism);

    // 1. The sky transmits. (Aircraft slightly beyond the query radius
    //    still emit — the receiver doesn't know the radius.)
    let candidates: Vec<_> = traffic
        .within(&site.position, config.radius_m * 1.3, config.duration_s / 2.0)
        .into_iter()
        .cloned()
        .collect();
    let emissions = TransponderSchedule::default().emissions(
        &candidates,
        0.0,
        config.duration_s,
        seed ^ 0x5EED,
    );

    // 2. Channel + front end per burst.
    let mut fe_cfg = FrontendConfig::bladerf_xa9(ADSB_FREQ_HZ, aircal_adsb::SAMPLE_RATE_HZ);
    fe_cfg.noise_figure_db = site.noise_figure_db;
    fe_cfg.fault = config.fault;
    let frontend = Frontend::new(fe_cfg);
    let renderer = CaptureRenderer::new(frontend.clone());

    // Slow shadowing: one standard-normal draw per aircraft, scaled by the
    // per-path σ (shadowing is an environment property, static over 30 s).
    // The draw is a pure function of (seed, ICAO), so it can be computed
    // up front and shared read-only by the burst workers.
    let mut shadow_draws: HashMap<IcaoAddress, f64> = HashMap::new();
    for e in &emissions {
        shadow_draws.entry(e.frame.icao()).or_insert_with(|| {
            let mut srng =
                ChaCha8Rng::seed_from_u64(seed ^ ((e.frame.icao().value() as u64) << 16));
            let u1: f64 = srng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = srng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
        });
    }

    // Per-burst link budget + fast fading, fanned out across workers.
    // Each burst derives its own RNG stream from (seed, burst index), so
    // the fade and carrier-phase draws never depend on scheduling order
    // and the result is bit-identical for every thread count.
    let plan_span = aircal_obs::span!("burst_planning");
    // Per-worker geometry scratch: the spatial index prunes the building
    // scan per burst, and each worker's buffers stay warm across its
    // share of the emissions.
    let mut geo_scratches: Vec<GeoScratch> =
        (0..threads.max(1)).map(|_| GeoScratch::new()).collect();
    let (mut plan_slots, mut planned) = (Vec::new(), Vec::new());
    par_map_with(
        &emissions,
        threads,
        &mut geo_scratches,
        &mut plan_slots,
        &mut planned,
        |i, e, geo| {
        let path = world.path_profile_indexed(index, site, &e.position, ADSB_FREQ_HZ, geo);
        let bearing = site.position.bearing_deg(&e.position);
        let elevation = site.position.elevation_deg(&e.position);
        let rx_gain = site.antenna.gain_dbi(bearing, elevation);
        let budget = LinkBudget::new(e.tx_power_dbm, 0.0, rx_gain);

        let mut shadow_std = shadow_draws[&e.frame.icao()];
        // Shadowing behind a deterministic obstruction is asymmetric: the
        // wall is definitely there, so clutter can add loss freely but can
        // "refund" at most ~1σ (a reflection path around the blocker).
        if path.is_obstructed() && path.diffraction_db + path.penetration_db >= 15.0 {
            shadow_std = shadow_std.max(-1.0);
        }
        let mut brng =
            ChaCha8Rng::seed_from_u64(derive_stream_seed(seed ^ 0xFADE, i as u64));
        let fade = RicianFading::from_k_db(path.k_factor_db).sample_power_gain(&mut brng);
        let rx_dbm = budget.median_rx_dbm(&path) - shadow_std * path.shadowing_sigma_db
            + 10.0 * fade.max(1e-12).log10();

        if frontend.snr_db(rx_dbm) < config.skip_below_snr_db {
            return None;
        }
        Some(BurstPlan {
            start_s: e.time_s,
            waveform: aircal_adsb::ppm::modulate_bytes(&e.frame.encode_bytes(), 1.0, 0.0),
            rx_power_dbm: rx_dbm,
            phase0: brng.gen_range(0.0..core::f64::consts::TAU),
        })
        },
    );
    drop(plan_span);
    let skipped_low_snr = planned.iter().filter(|p| p.is_none()).count();
    let plans: Vec<BurstPlan> = planned.into_iter().flatten().collect();

    // 3. Render and decode, dump1090-style. Rendering derives one noise
    //    stream per cluster; decoding fans out per window; the merge is
    //    in window (time) order, exactly as a serial pass would produce.
    let windows = renderer.render_seeded(&plans, seed ^ 0xC0DE, threads);
    let decode_span = aircal_obs::span!("decode_windows");
    let decoder = Decoder::default();
    // Per-worker decode scratch: each worker's correlation/demod buffers
    // warm up once and are reused across every window it scans.
    let mut decode_scratches: Vec<(DecodeScratch, Vec<DecodedMessage>)> =
        (0..threads.max(1)).map(|_| Default::default()).collect();
    let (mut slots, mut per_window) = (Vec::new(), Vec::new());
    par_map_with(
        &windows,
        threads,
        &mut decode_scratches,
        &mut slots,
        &mut per_window,
        |_, w, (scratch, msgs)| {
            decoder.scan_with(&w.samples, w.start_s, scratch, msgs);
            std::mem::take(msgs)
        },
    );
    let decoded: Vec<DecodedMessage> = per_window.into_iter().flatten().collect();
    drop(decode_span);

    // 4. Ground truth at the mid-capture query time.
    let gts = GroundTruthService::new(config.ground_truth_latency_s);
    let truth = gts.query(traffic, &site.position, config.radius_m, config.query_time_s);

    // 5. Match decoded ICAOs against the ground truth.
    let mut per_icao: HashMap<IcaoAddress, Vec<&DecodedMessage>> = HashMap::new();
    for m in &decoded {
        per_icao.entry(m.frame.icao()).or_default().push(m);
    }
    let truth_set: HashSet<IcaoAddress> = truth.iter().map(|a| a.icao).collect();
    let unmatched_messages = decoded
        .iter()
        .filter(|m| !truth_set.contains(&m.frame.icao()))
        .count();

    let points = truth
        .iter()
        .map(|a| {
            let msgs = per_icao.get(&a.icao).map(|v| v.as_slice()).unwrap_or(&[]);
            let mean_rssi = if msgs.is_empty() {
                None
            } else {
                Some(msgs.iter().map(|m| m.rssi_dbfs).sum::<f64>() / msgs.len() as f64)
            };
            SurveyPoint {
                icao: a.icao,
                callsign: a.callsign.clone(),
                bearing_deg: site.position.bearing_deg(&a.position),
                range_m: site.position.distance_m(&a.position),
                altitude_m: a.position.alt_m,
                observed: !msgs.is_empty(),
                messages: msgs.len(),
                mean_rssi_dbfs: mean_rssi,
            }
        })
        .collect();

    // 6. Recover positions via global CPR (even/odd pairs), as dump1090
    //    would display them.
    let decoded_positions = decode_positions(&decoded, &site.position);

    SurveyResult {
        points,
        total_messages: decoded.len(),
        unmatched_messages,
        skipped_low_snr,
        decoded_positions,
        config: *config,
    }
}

/// Pair consecutive even/odd airborne-position messages per aircraft and
/// decode globally; the reference position is only used as a sanity bound.
fn decode_positions(
    decoded: &[DecodedMessage],
    sensor: &LatLon,
) -> Vec<(IcaoAddress, LatLon)> {
    let _span = aircal_obs::span!("cpr_decode");
    let mut latest: HashMap<IcaoAddress, (Option<cpr::CprPosition>, Option<cpr::CprPosition>, f64)> =
        HashMap::new();
    let mut out: HashMap<IcaoAddress, LatLon> = HashMap::new();
    let mut msgs: Vec<&DecodedMessage> = decoded.iter().collect();
    msgs.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap());
    for m in msgs {
        let Some(MePayload::AirbornePosition { altitude_ft, cpr }) = m.frame.payload() else {
            continue;
        };
        let entry = latest.entry(m.frame.icao()).or_insert((None, None, 0.0));
        match cpr.format {
            cpr::CprFormat::Even => entry.0 = Some(*cpr),
            cpr::CprFormat::Odd => entry.1 = Some(*cpr),
        }
        entry.2 = m.time_s;
        if let (Some(even), Some(odd)) = (entry.0, entry.1) {
            let pair = CprPair {
                even,
                odd,
                latest: cpr.format,
            };
            if let Ok((lat, lon)) = cpr::decode_global(&pair) {
                let pos = LatLon::new(lat, lon, aircal_adsb::altitude::ft_to_m(*altitude_ft));
                // Discard absurd decodes (zone-straddling artifacts).
                if sensor.distance_m(&pos) < 500_000.0 {
                    out.insert(m.frame.icao(), pos);
                }
            }
        }
    }
    let mut positions: Vec<(IcaoAddress, LatLon)> = out.into_iter().collect();
    positions.sort_by_key(|(icao, _)| *icao);
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_aircraft::TrafficConfig;
    use aircal_env::{Scenario, ScenarioKind};
    use aircal_geo::Sector;

    fn traffic_for(s: &Scenario, count: usize, seed: u64) -> TrafficSim {
        TrafficSim::generate(
            TrafficConfig {
                count,
                ..TrafficConfig::paper_default(s.site.position)
            },
            seed,
        )
    }

    #[test]
    fn open_field_observes_most_aircraft() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = traffic_for(&s, 40, 1);
        let r = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 1);
        assert!(
            r.observation_rate() > 0.8,
            "open field observed only {:.0}%",
            r.observation_rate() * 100.0
        );
        assert!(r.max_observed_range_m() > 70_000.0);
        assert!(r.total_messages > 100);
    }

    #[test]
    fn rooftop_sees_far_west_short_east() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let traffic = traffic_for(&s, 80, 12);
        let r = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 12);
        let west = Sector::centered(270.0, 120.0);
        let far_west_observed = r
            .points
            .iter()
            .filter(|p| west.contains(p.bearing_deg) && p.range_m > 50_000.0 && p.observed)
            .count();
        let far_east = |obs: bool| {
            r.points
                .iter()
                .filter(|p| !west.contains(p.bearing_deg) && p.range_m > 60_000.0 && p.observed == obs)
                .count()
        };
        assert!(far_west_observed >= 1, "no distant western aircraft seen");
        // The paper's Figure 1(a) has a couple of lucky long-range decodes
        // outside the open sector (multipath/shadowing tails); the bulk of
        // distant non-west aircraft must be missed.
        assert!(
            far_east(true) <= 2,
            "{} distant non-west aircraft seen",
            far_east(true)
        );
        assert!(
            far_east(false) >= 3 * far_east(true).max(1),
            "missed {} vs seen {} beyond 60 km off-sector",
            far_east(false),
            far_east(true)
        );
    }

    #[test]
    fn indoor_sees_only_close_aircraft() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let traffic = traffic_for(&s, 80, 13);
        let r = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 13);
        // Figure 1(c): only close-in aircraft decode indoors. A lucky
        // deep-shadow outlier or two can stretch past 20 km; the bulk
        // cannot.
        assert!(
            r.max_observed_range_m() < 40_000.0,
            "indoor observed out to {} m",
            r.max_observed_range_m()
        );
        let observed_beyond_30km = r
            .points
            .iter()
            .filter(|p| p.observed && p.range_m > 30_000.0)
            .count();
        assert!(
            observed_beyond_30km <= 1,
            "{observed_beyond_30km} aircraft observed beyond 30 km indoors"
        );
        let observed_within_15km = r
            .points
            .iter()
            .filter(|p| p.range_m < 15_000.0)
            .filter(|p| p.observed)
            .count();
        let total_within_15km = r.points.iter().filter(|p| p.range_m < 15_000.0).count();
        if total_within_15km > 0 {
            assert!(
                observed_within_15km * 2 >= total_within_15km,
                "close-in reception should mostly work indoors: {observed_within_15km}/{total_within_15km}"
            );
        }
    }

    #[test]
    fn dead_frontend_sees_nothing() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = traffic_for(&s, 30, 4);
        let cfg = SurveyConfig {
            fault: FrontendFault::Dead,
            ..SurveyConfig::quick()
        };
        let r = run_survey(&s.world, &s.site, &traffic, &cfg, 4);
        assert_eq!(r.total_messages, 0);
        assert_eq!(r.observation_rate(), 0.0);
    }

    #[test]
    fn decoded_positions_match_truth() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = traffic_for(&s, 30, 5);
        let r = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 5);
        assert!(!r.decoded_positions.is_empty());
        for (icao, pos) in &r.decoded_positions {
            let f = traffic.by_icao(*icao).expect("decoded aircraft exists");
            // Position decoded from CPR pairs received over the capture:
            // within the distance flown in the window plus CPR resolution.
            let best = (0..=10)
                .map(|k| f.position_at(k as f64).distance_m(pos))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 500.0, "{icao}: CPR decode off by {best} m");
        }
    }

    #[test]
    fn points_cover_all_ground_truth() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = traffic_for(&s, 25, 6);
        let r = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 6);
        // Every ground-truth aircraft appears exactly once.
        let mut icaos: Vec<_> = r.points.iter().map(|p| p.icao).collect();
        icaos.sort();
        icaos.dedup();
        assert_eq!(icaos.len(), r.points.len());
        for p in &r.points {
            assert!(p.range_m <= 100_000.0 + 1.0);
            if p.observed {
                assert!(p.messages > 0);
                assert!(p.mean_rssi_dbfs.is_some());
            } else {
                assert_eq!(p.messages, 0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Scenario::build(ScenarioKind::OpenField);
        let traffic = traffic_for(&s, 15, 7);
        let a = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 7);
        let b = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::quick(), 7);
        assert_eq!(a.points, b.points);
        assert_eq!(a.total_messages, b.total_messages);
    }

    /// The tentpole contract: the parallel pipeline is **bit-identical**
    /// to the serial one — every field, including the order of
    /// `decoded_positions` — for any thread count and several seeds.
    #[test]
    fn parallel_survey_is_bit_identical_to_serial() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        for seed in [1u64, 5, 9] {
            let traffic = traffic_for(&s, 20, seed);
            let serial = run_survey(
                &s.world,
                &s.site,
                &traffic,
                &SurveyConfig {
                    parallelism: 1,
                    ..SurveyConfig::quick()
                },
                seed,
            );
            assert!(!serial.decoded_positions.is_empty(), "seed {seed}: no positions");
            for parallelism in [2usize, 8] {
                let parallel = run_survey(
                    &s.world,
                    &s.site,
                    &traffic,
                    &SurveyConfig {
                        parallelism,
                        ..SurveyConfig::quick()
                    },
                    seed,
                );
                assert_eq!(serial.points, parallel.points, "seed {seed} x{parallelism}");
                assert_eq!(serial.total_messages, parallel.total_messages);
                assert_eq!(serial.unmatched_messages, parallel.unmatched_messages);
                assert_eq!(serial.skipped_low_snr, parallel.skipped_low_snr);
                assert_eq!(
                    serial.decoded_positions, parallel.decoded_positions,
                    "seed {seed} x{parallelism}: position list (incl. order) must match"
                );
            }
        }
    }

    /// The SNR gate's work savings are surfaced: a permissive gate skips
    /// nothing, the default gate skips the un-decodable tail, and a harsh
    /// gate skips everything the permissive run would have rendered.
    #[test]
    fn skipped_low_snr_counts_gated_bursts() {
        let s = Scenario::build(ScenarioKind::Indoor);
        let traffic = traffic_for(&s, 30, 8);
        let survey = |snr_gate: f64| {
            run_survey(
                &s.world,
                &s.site,
                &traffic,
                &SurveyConfig {
                    skip_below_snr_db: snr_gate,
                    ..SurveyConfig::quick()
                },
                8,
            )
        };
        let permissive = survey(-1e9);
        let default_gate = survey(0.0);
        let harsh = survey(1e9);
        assert_eq!(permissive.skipped_low_snr, 0);
        assert!(default_gate.skipped_low_snr > 0, "indoor survey should gate some bursts");
        assert!(harsh.total_messages == 0 && harsh.skipped_low_snr > default_gate.skipped_low_snr);
    }
}
