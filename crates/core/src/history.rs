//! Longitudinal monitoring: track a node's calibration over time and
//! detect degradation.
//!
//! A node that passed its first audit can still rot: coax connectors
//! corrode, antennas sag, a new building goes up next door. Blind
//! calibration's advantage (§4: it "can often be conducted during
//! operation and used to adapt to performance variations as conditions
//! change") only pays off if someone watches the trend — this module is
//! that watcher.

use crate::report::CalibrationReport;
use serde::{Deserialize, Serialize};

/// A compact snapshot of one calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSnapshot {
    /// When the calibration ran (hours since node registration).
    pub t_hours: f64,
    /// Trust score, 0–100.
    pub trust: f64,
    /// Farthest observed ADS-B range, meters.
    pub max_range_m: f64,
    /// Fraction of bands usable, 0–1.
    pub band_usable: f64,
    /// FoV width, degrees.
    pub fov_width_deg: f64,
}

impl CalibrationSnapshot {
    /// Extract a snapshot from a full report.
    pub fn from_report(t_hours: f64, report: &CalibrationReport) -> Self {
        Self {
            t_hours,
            trust: report.trust.score,
            max_range_m: report.survey.max_observed_range_m,
            band_usable: report.frequency.usable_fraction(),
            fov_width_deg: report.fov.estimated.width_deg,
        }
    }
}

/// A detected degradation trend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriftAlert {
    /// Trust is trending down by more than the threshold per 100 h.
    TrustDecline {
        /// Fitted slope, trust points per 100 hours (negative).
        per_100h: f64,
    },
    /// ADS-B reach is shrinking (antenna/cable degradation signature).
    RangeShrinking {
        /// Fitted slope, km per 100 hours (negative).
        km_per_100h: f64,
    },
    /// Bands are dropping out of the usable set.
    BandsLost {
        /// Usable fraction at the start and end of the window.
        from: f64,
        /// See `from`.
        to: f64,
    },
    /// A step change: the newest snapshot differs from the historical
    /// median by a large margin (sudden event: new obstruction, knocked
    /// antenna, swapped hardware).
    StepChange {
        /// Which metric stepped.
        metric: String,
        /// Relative change, −1..∞.
        relative: f64,
    },
}

/// The history of one node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CalibrationHistory {
    snapshots: Vec<CalibrationSnapshot>,
}

impl CalibrationHistory {
    /// Append a snapshot (must be time-ordered; out-of-order pushes are
    /// rejected).
    pub fn push(&mut self, snap: CalibrationSnapshot) -> bool {
        if let Some(last) = self.snapshots.last() {
            if snap.t_hours < last.t_hours {
                return false;
            }
        }
        self.snapshots.push(snap);
        true
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshots.
    pub fn snapshots(&self) -> &[CalibrationSnapshot] {
        &self.snapshots
    }

    /// Least-squares slope of `metric(snapshot)` per hour.
    fn slope_per_hour<F: Fn(&CalibrationSnapshot) -> f64>(&self, metric: F) -> Option<f64> {
        let n = self.snapshots.len();
        if n < 3 {
            return None;
        }
        let xs: Vec<f64> = self.snapshots.iter().map(|s| s.t_hours).collect();
        let ys: Vec<f64> = self.snapshots.iter().map(&metric).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        if sxx < 1e-12 {
            return None;
        }
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum();
        Some(sxy / sxx)
    }

    /// Median of a metric over history excluding the last snapshot.
    fn baseline_median<F: Fn(&CalibrationSnapshot) -> f64>(&self, metric: F) -> Option<f64> {
        if self.snapshots.len() < 4 {
            return None;
        }
        let mut vals: Vec<f64> = self.snapshots[..self.snapshots.len() - 1]
            .iter()
            .map(&metric)
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(vals[vals.len() / 2])
    }

    /// Analyze the history and report any degradation alerts.
    pub fn detect_drift(&self) -> Vec<DriftAlert> {
        let mut alerts = Vec::new();

        if let Some(slope) = self.slope_per_hour(|s| s.trust) {
            let per_100h = slope * 100.0;
            if per_100h < -5.0 {
                alerts.push(DriftAlert::TrustDecline { per_100h });
            }
        }
        if let Some(slope) = self.slope_per_hour(|s| s.max_range_m / 1_000.0) {
            let km_per_100h = slope * 100.0;
            if km_per_100h < -10.0 {
                alerts.push(DriftAlert::RangeShrinking { km_per_100h });
            }
        }
        if self.snapshots.len() >= 2 {
            let from = self.snapshots.first().map(|s| s.band_usable).unwrap_or(0.0);
            let to = self.snapshots.last().map(|s| s.band_usable).unwrap_or(0.0);
            if to < from - 0.15 {
                alerts.push(DriftAlert::BandsLost { from, to });
            }
        }
        // Step change on range: latest vs historical median.
        if let (Some(base), Some(last)) = (
            self.baseline_median(|s| s.max_range_m),
            self.snapshots.last(),
        ) {
            if base > 1.0 {
                let relative = (last.max_range_m - base) / base;
                if relative < -0.5 {
                    alerts.push(DriftAlert::StepChange {
                        metric: "max_range_m".into(),
                        relative,
                    });
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: f64, trust: f64, range_km: f64, usable: f64) -> CalibrationSnapshot {
        CalibrationSnapshot {
            t_hours: t,
            trust,
            max_range_m: range_km * 1_000.0,
            band_usable: usable,
            fov_width_deg: 120.0,
        }
    }

    #[test]
    fn healthy_history_raises_nothing() {
        let mut h = CalibrationHistory::default();
        for i in 0..8 {
            // Small bounded jitter, no trend.
            let j = [0.0, 1.5, -1.0, 0.5, -0.5, 1.0, -1.5, 0.0][i];
            assert!(h.push(snap(i as f64 * 24.0, 85.0 + j, 95.0 + j, 1.0)));
        }
        assert!(h.detect_drift().is_empty(), "{:?}", h.detect_drift());
    }

    #[test]
    fn slow_corrosion_detected() {
        // Trust and range slide together over three weeks.
        let mut h = CalibrationHistory::default();
        for i in 0..10 {
            let t = i as f64 * 48.0;
            h.push(snap(t, 90.0 - t * 0.08, 95.0 - t * 0.15, 1.0));
        }
        let alerts = h.detect_drift();
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a, DriftAlert::TrustDecline { .. })),
            "{alerts:?}"
        );
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a, DriftAlert::RangeShrinking { .. })),
            "{alerts:?}"
        );
    }

    #[test]
    fn sudden_obstruction_is_a_step() {
        let mut h = CalibrationHistory::default();
        for i in 0..6 {
            h.push(snap(i as f64 * 24.0, 85.0, 95.0, 1.0));
        }
        // Scaffolding went up outside the window.
        h.push(snap(150.0, 70.0, 18.0, 0.7));
        let alerts = h.detect_drift();
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a, DriftAlert::StepChange { .. })),
            "{alerts:?}"
        );
        assert!(
            alerts.iter().any(|a| matches!(a, DriftAlert::BandsLost { .. })),
            "{alerts:?}"
        );
    }

    #[test]
    fn out_of_order_rejected() {
        let mut h = CalibrationHistory::default();
        assert!(h.push(snap(10.0, 80.0, 90.0, 1.0)));
        assert!(!h.push(snap(5.0, 80.0, 90.0, 1.0)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn too_short_history_stays_quiet() {
        let mut h = CalibrationHistory::default();
        h.push(snap(0.0, 90.0, 95.0, 1.0));
        h.push(snap(24.0, 20.0, 10.0, 0.3));
        // Two points: trend analysis refuses, only the band loss (which
        // needs just two points) may fire.
        let alerts = h.detect_drift();
        assert!(alerts
            .iter()
            .all(|a| matches!(a, DriftAlert::BandsLost { .. })));
    }

    #[test]
    fn improving_node_raises_nothing() {
        let mut h = CalibrationHistory::default();
        for i in 0..8 {
            let t = i as f64 * 24.0;
            h.push(snap(t, 60.0 + t * 0.1, 40.0 + t * 0.2, 0.8));
        }
        assert!(h.detect_drift().is_empty());
    }
}
