//! Fleet auditing: calibrate many nodes and rank them.
//!
//! The paper's deployment model is a marketplace: "node operators offer
//! spectrum sensing as a service and users pay to rent these services."
//! The auditor is the marketplace's quality gate — it calibrates every
//! node and produces a ranked roster a renter can filter ("give me
//! outdoor nodes with ≥180° of sky and usable 2 GHz").

use crate::engine::Calibrator;
use crate::report::CalibrationReport;
use aircal_env::Scenario;
use serde::{Deserialize, Serialize};

/// One audited node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeAudit {
    /// Node name.
    pub name: String,
    /// Rank within the fleet (1 = best trust score).
    pub rank: usize,
    /// The full report.
    pub report: CalibrationReport,
}

/// Fleet-level audit results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Nodes sorted by descending trust score.
    pub nodes: Vec<NodeAudit>,
}

impl FleetReport {
    /// Nodes passing a renter's filter.
    pub fn filter<F: Fn(&CalibrationReport) -> bool>(&self, pred: F) -> Vec<&NodeAudit> {
        self.nodes.iter().filter(|n| pred(&n.report)).collect()
    }

    /// The best node by trust.
    pub fn best(&self) -> Option<&NodeAudit> {
        self.nodes.first()
    }
}

/// The auditor.
#[derive(Debug, Clone, Default)]
pub struct FleetAuditor {
    /// Calibration settings applied to every node.
    pub calibrator: Calibrator,
}

impl FleetAuditor {
    /// Create with a specific calibrator.
    pub fn new(calibrator: Calibrator) -> Self {
        Self { calibrator }
    }

    /// Audit a fleet of scenarios (each its own world + site). Seeds are
    /// derived per node so results are independent but reproducible; the
    /// per-node calibrations fan out over the calibrator's `parallelism`
    /// knob (`0` = all cores) with results merged in fleet order, so the
    /// report is identical for any thread count.
    pub fn audit(&self, fleet: &[Scenario], seed: u64) -> FleetReport {
        let threads = aircal_dsp::resolve_parallelism(self.calibrator.survey.parallelism);
        let mut nodes: Vec<NodeAudit> = aircal_dsp::par_map(fleet, threads, |i, s| NodeAudit {
            name: s.site.name.clone(),
            rank: 0,
            report: self
                .calibrator
                .calibrate(&s.world, &s.site, seed.wrapping_add(i as u64 * 0x9E37)),
        });
        // total_cmp: a NaN score (corrupted input) sorts last instead of
        // panicking the whole fleet audit.
        nodes.sort_by(|a, b| b.report.trust.score.total_cmp(&a.report.trust.score));
        for (i, n) in nodes.iter_mut().enumerate() {
            n.rank = i + 1;
        }
        FleetReport { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_env::all_scenarios;

    #[test]
    fn fleet_ranking_prefers_open_installations() {
        let fleet = all_scenarios();
        let report = FleetAuditor::new(Calibrator::quick()).audit(&fleet, 51);
        assert_eq!(report.nodes.len(), fleet.len());
        // Ranks are 1..=N and scores descend.
        for (i, n) in report.nodes.iter().enumerate() {
            assert_eq!(n.rank, i + 1);
        }
        for w in report.nodes.windows(2) {
            assert!(w[0].report.trust.score >= w[1].report.trust.score);
        }
        // The open-field node must beat the indoor node.
        let pos = |name: &str| {
            report
                .nodes
                .iter()
                .position(|n| n.name == name)
                .unwrap_or(usize::MAX)
        };
        assert!(
            pos("open-field") < pos("indoor"),
            "open-field rank {} vs indoor {}",
            pos("open-field"),
            pos("indoor")
        );
    }

    #[test]
    fn renter_filters_work() {
        let fleet = all_scenarios();
        let report = FleetAuditor::new(Calibrator::quick()).audit(&fleet, 52);
        let outdoor_wide = report.filter(|r| r.install.outdoor && r.fov.open_fraction() > 0.5);
        assert!(!outdoor_wide.is_empty());
        assert!(outdoor_wide.iter().any(|n| n.name == "open-field"));
        assert!(outdoor_wide.iter().all(|n| n.name != "indoor"));
        assert!(report.best().is_some());
    }
}
