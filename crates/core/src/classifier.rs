//! Indoor/outdoor classification from combined evidence (§3.2).
//!
//! "Combining the results from multiple experiments, including ADS-B,
//! cellular networks, and broadcast TV, can provide additional insights
//! such as determining whether an installation is indoor or outdoor."
//!
//! Features are exactly the paper's cues: long-range sky visibility (from
//! the ADS-B survey) and high-frequency attenuation (from the cellular/TV
//! profile). A small logistic model combines them; the default weights are
//! hand-set from the physics, and [`IndoorOutdoorClassifier::train`] can
//! refit them from labeled scenarios.

use crate::fov::FovEstimate;
use crate::freqprofile::FrequencyProfile;
use crate::survey::SurveyResult;
use serde::{Deserialize, Serialize};

/// The classifier's input features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstallFeatures {
    /// Fraction of the circle with long-range ADS-B visibility, 0–1.
    pub sky_open_fraction: f64,
    /// Farthest observed aircraft, normalized by 100 km, 0–1+.
    pub max_range_norm: f64,
    /// Mean excess attenuation above 1.5 GHz, dB (blind bands = 40 dB).
    pub midband_attenuation_db: f64,
    /// Fraction of bands with any measurement, 0–1.
    pub band_usable_fraction: f64,
    /// Median RSSI deficit (expected-LOS minus measured, dB) of ADS-B
    /// receptions *inside the estimated field of view*. Even through its
    /// best aperture, an indoor sensor pays glass/wall loss; an outdoor
    /// sensor in a street canyon measures its open sector at full strength.
    /// 30 dB (the maximum) when nothing in the FoV was observed.
    pub fov_rssi_deficit_db: f64,
}

impl InstallFeatures {
    /// Extract features from survey + FoV + frequency profile.
    pub fn extract(
        survey: &SurveyResult,
        fov: &FovEstimate,
        profile: &FrequencyProfile,
    ) -> Self {
        Self {
            sky_open_fraction: fov.open_fraction(),
            max_range_norm: (survey.max_observed_range_m() / 100_000.0).min(1.2),
            midband_attenuation_db: profile.mean_attenuation_above(1.5e9, 40.0),
            band_usable_fraction: profile.usable_fraction(),
            fov_rssi_deficit_db: fov_rssi_deficit(survey, fov),
        }
    }

    fn vector(&self) -> [f64; 6] {
        [
            1.0,
            self.sky_open_fraction,
            self.max_range_norm,
            self.midband_attenuation_db / 40.0, // normalize to ~0–1
            self.band_usable_fraction,
            (self.fov_rssi_deficit_db / 30.0).clamp(0.0, 1.5),
        ]
    }
}

/// Median (expected-LOS − measured) RSSI over observed in-FoV aircraft.
///
/// Expectation: median transponder EIRP (~53 dBm) + whip gain (2 dBi) −
/// FSPL over the slant range, converted to dBFS against the survey front
/// end's −30 dBm full scale. Transmit-power spread (75–500 W) adds ±4 dB
/// of noise that the median absorbs.
fn fov_rssi_deficit(survey: &SurveyResult, fov: &FovEstimate) -> f64 {
    let n_ring = fov.open_ring.len();
    let mut deficits: Vec<f64> = survey
        .points
        .iter()
        .filter(|p| p.observed && n_ring > 0)
        .filter(|p| {
            let idx = ((p.bearing_deg / 360.0 * n_ring as f64) as usize).min(n_ring - 1);
            fov.open_ring[idx]
        })
        .filter_map(|p| {
            let rssi = p.mean_rssi_dbfs?;
            let slant = (p.range_m.powi(2) + p.altitude_m.powi(2)).sqrt();
            let fspl = aircal_rfprop::free_space_path_loss_db(slant, 1.09e9);
            let expected_dbfs = 53.0 + 2.0 - fspl + 30.0;
            Some((expected_dbfs - rssi).clamp(-10.0, 60.0))
        })
        .collect();
    if deficits.is_empty() {
        return 30.0;
    }
    deficits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    deficits[deficits.len() / 2]
}

/// The classification verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstallVerdict {
    /// `true` = outdoor installation.
    pub outdoor: bool,
    /// Model probability of "outdoor", 0–1.
    pub probability_outdoor: f64,
}

/// Logistic indoor/outdoor classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndoorOutdoorClassifier {
    /// Weights over [bias, sky, range, midband-attenuation, usable,
    /// in-FoV RSSI deficit].
    pub weights: [f64; 6],
}

impl Default for IndoorOutdoorClassifier {
    /// Physics-derived default: openness, range and a clean in-FoV RSSI
    /// argue outdoor; mid-band attenuation and aperture loss argue indoor.
    fn default() -> Self {
        Self {
            weights: [-1.0, 2.0, 4.5, -5.0, 1.0, -3.0],
        }
    }
}

impl IndoorOutdoorClassifier {
    /// Classify an installation.
    pub fn classify(&self, f: &InstallFeatures) -> InstallVerdict {
        let z: f64 = self
            .weights
            .iter()
            .zip(f.vector())
            .map(|(w, x)| w * x)
            .sum();
        let p = 1.0 / (1.0 + (-z).exp());
        InstallVerdict {
            outdoor: p >= 0.5,
            probability_outdoor: p,
        }
    }

    /// Fit weights on labeled samples (label `true` = outdoor) by
    /// full-batch gradient descent on the logistic loss. Deterministic.
    pub fn train(samples: &[(InstallFeatures, bool)], epochs: usize) -> Self {
        let mut model = Self::default();
        if samples.is_empty() {
            return model;
        }
        let lr = 0.8;
        let lambda = 1e-3;
        for _ in 0..epochs.max(1) {
            let mut grad = [0.0f64; 6];
            for (f, label) in samples {
                let x = f.vector();
                let z: f64 = model.weights.iter().zip(x).map(|(w, xi)| w * xi).sum();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - if *label { 1.0 } else { 0.0 };
                for (g, xi) in grad.iter_mut().zip(x) {
                    *g += err * xi;
                }
            }
            for (w, g) in model.weights.iter_mut().zip(grad) {
                *w -= lr * (g / samples.len() as f64 + lambda * *w);
            }
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outdoor_features() -> InstallFeatures {
        InstallFeatures {
            sky_open_fraction: 0.9,
            max_range_norm: 0.95,
            midband_attenuation_db: 2.0,
            band_usable_fraction: 1.0,
            fov_rssi_deficit_db: 2.0,
        }
    }

    fn indoor_features() -> InstallFeatures {
        InstallFeatures {
            sky_open_fraction: 0.0,
            max_range_norm: 0.15,
            midband_attenuation_db: 35.0,
            band_usable_fraction: 0.5,
            fov_rssi_deficit_db: 30.0,
        }
    }

    #[test]
    fn default_model_separates_clear_cases() {
        let c = IndoorOutdoorClassifier::default();
        let out = c.classify(&outdoor_features());
        let ind = c.classify(&indoor_features());
        assert!(out.outdoor && out.probability_outdoor > 0.8);
        assert!(!ind.outdoor && ind.probability_outdoor < 0.2);
    }

    #[test]
    fn window_site_leans_indoor() {
        // Narrow aperture, moderate attenuation — the paper's location ②.
        let c = IndoorOutdoorClassifier::default();
        let f = InstallFeatures {
            sky_open_fraction: 0.1,
            max_range_norm: 0.8,
            midband_attenuation_db: 25.0,
            band_usable_fraction: 0.7,
            fov_rssi_deficit_db: 8.0,
        };
        let v = c.classify(&f);
        assert!(!v.outdoor, "p_outdoor {}", v.probability_outdoor);
    }

    #[test]
    fn training_recovers_separation() {
        // Train on noisy variants of the two prototypes.
        let mut samples = Vec::new();
        for i in 0..20 {
            let jitter = i as f64 * 0.01;
            let mut o = outdoor_features();
            o.sky_open_fraction -= jitter;
            o.midband_attenuation_db += jitter * 10.0;
            samples.push((o, true));
            let mut ind = indoor_features();
            ind.sky_open_fraction += jitter;
            ind.midband_attenuation_db -= jitter * 10.0;
            samples.push((ind, false));
        }
        let model = IndoorOutdoorClassifier::train(&samples, 500);
        for (f, label) in &samples {
            assert_eq!(model.classify(f).outdoor, *label, "{f:?}");
        }
    }

    #[test]
    fn train_on_empty_returns_default() {
        let m = IndoorOutdoorClassifier::train(&[], 100);
        assert_eq!(m.weights, IndoorOutdoorClassifier::default().weights);
    }

    #[test]
    fn probability_is_monotone_in_attenuation() {
        let c = IndoorOutdoorClassifier::default();
        let mut f = outdoor_features();
        let mut prev = c.classify(&f).probability_outdoor;
        for atten in [10.0, 20.0, 30.0, 40.0] {
            f.midband_attenuation_db = atten;
            let p = c.classify(&f).probability_outdoor;
            assert!(p < prev, "attenuation {atten}: {p} !< {prev}");
            prev = p;
        }
    }
}
