//! Criterion bench for the deterministic-lane SIMD kernels, scalar arm
//! vs the runtime-dispatched arm on every workload the measurement
//! chains actually run: burst magnitude-squared, short-tap direct FIR
//! inner products, preamble correlation dots, and the windowed-PSD
//! segment (window application + |FFT bin|² accumulation).
//!
//! Both arms compute in the same fixed 8-lane reduction order, so the
//! pairs here differ only in issue width — any value divergence is a
//! bug, and the `simd_equivalence` suite proves there is none.

use aircal_dsp::simd::Kernels;
use aircal_dsp::Cplx;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn arms() -> [(&'static str, &'static Kernels); 2] {
    // `detect()` ignores `AIRCAL_FORCE_SCALAR`, so the pair stays a
    // scalar-vs-vector comparison even on the forced-scalar CI leg.
    [("scalar", Kernels::scalar()), ("dispatched", Kernels::detect())]
}

fn tone(n: usize, w: f64) -> Vec<Cplx> {
    (0..n).map(|i| Cplx::phasor(w * i as f64)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    const N: usize = 4096;
    let za = tone(N, 0.123);
    let zb = tone(N, 0.071);
    let taps: Vec<f64> = (0..N).map(|i| 0.5 - 0.5 * (0.002 * i as f64).cos()).collect();

    // Burst magnitude-squared: the ADS-B PPM demod / TV band-power map.
    let mut group = c.benchmark_group("kernels/mag2_4096");
    group.throughput(Throughput::Elements(N as u64));
    for (label, k) in arms() {
        group.bench_function(label, |b| b.iter(|| black_box((k.energy)(black_box(&za)))));
    }
    group.finish();

    // Direct FIR at a short tap count: 16-tap sliding inner products
    // across the buffer — the `FirFilter::process_into` hot loop.
    const TAPS: usize = 16;
    let h = &zb[..TAPS];
    let mut group = c.benchmark_group("kernels/fir_direct_16tap_4096");
    group.throughput(Throughput::Elements((N - TAPS) as u64));
    group.sample_size(20);
    for (label, k) in arms() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut acc = Cplx::ZERO;
                for n in 0..N - TAPS {
                    acc += (k.cdot)(black_box(&za[n..n + TAPS]), h);
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // Correlation dot: one conjugated inner product over the full buffer
    // — the preamble-scan kernel at template length.
    let mut group = c.benchmark_group("kernels/corr_dot_4096");
    group.throughput(Throughput::Elements(N as u64));
    for (label, k) in arms() {
        group.bench_function(label, |b| {
            b.iter(|| black_box((k.cdot_conj)(black_box(&za), black_box(&zb))))
        });
    }
    group.finish();

    // Windowed-PSD segment: apply taps, then accumulate |z|² — the Welch
    // per-segment work around the FFT.
    let mut group = c.benchmark_group("kernels/windowed_psd_seg_4096");
    group.throughput(Throughput::Elements(N as u64));
    for (label, k) in arms() {
        let mut buf = vec![Cplx::ZERO; N];
        let mut out = vec![0.0f64; N];
        group.bench_function(label, |b| {
            b.iter(|| {
                (k.scale_map)(black_box(&za), &taps, &mut buf);
                (k.norm_sq_accum)(&buf, &mut out);
                black_box(out[N - 1])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
