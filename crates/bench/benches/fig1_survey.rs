//! Criterion bench for the Figure 1 pipeline: the full directional survey
//! (traffic → channel → burst IQ → decode → match) per scenario.

use aircal_bench::paper_traffic;
use aircal_core::survey::{run_survey, SurveyConfig};
use aircal_env::{Scenario, ScenarioKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_survey(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_survey");
    group.sample_size(10);
    for kind in [
        ScenarioKind::Rooftop,
        ScenarioKind::BehindWindow,
        ScenarioKind::Indoor,
    ] {
        let scenario = Scenario::build(kind);
        let traffic = paper_traffic(&scenario, 1);
        let cfg = SurveyConfig::quick();
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                black_box(run_survey(
                    &scenario.world,
                    &scenario.site,
                    &traffic,
                    &cfg,
                    black_box(1),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_survey);
criterion_main!(benches);
