//! Criterion bench for the geometry acceleration layer: brute-force
//! `path_profile` vs the uniform-grid spatial index vs the index plus
//! the exact-key path memo, on a dense synthetic downtown where the
//! world→PHY hot path actually spends its time.

use aircal_env::scenarios::dense_city;
use aircal_env::{GeoScratch, PathCache};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_geometry(c: &mut Criterion) {
    let dense = dense_city(12);
    let rays = 72usize;
    let (freq, elev, range) = (1.09e9, 2.0, 50_000.0);
    let index = dense.world.index();

    let mut group = c.benchmark_group(&format!(
        "geometry/obstruction_{}b_{}rays",
        dense.world.buildings.len(),
        rays
    ));
    group.throughput(Throughput::Elements(rays as u64));
    group.sample_size(10);

    group.bench_function("brute", |b| {
        b.iter(|| {
            black_box(
                dense
                    .world
                    .obstruction_profile(&dense.site, freq, elev, range, rays),
            )
        })
    });

    let mut scratch = GeoScratch::new();
    let mut out = Vec::new();
    group.bench_function("indexed", |b| {
        b.iter(|| {
            dense.world.obstruction_profile_with(
                &index, None, &dense.site, freq, elev, range, rays, &mut scratch, &mut out,
            );
            black_box(out.len())
        })
    });

    let mut cache = PathCache::new();
    // Warm once so the timed iterations measure the steady state: a
    // static-emitter sweep that is entirely memo hits.
    dense.world.obstruction_profile_with(
        &index,
        Some(&mut cache),
        &dense.site,
        freq,
        elev,
        range,
        rays,
        &mut scratch,
        &mut out,
    );
    group.bench_function("indexed_cached", |b| {
        b.iter(|| {
            dense.world.obstruction_profile_with(
                &index,
                Some(&mut cache),
                &dense.site,
                freq,
                elev,
                range,
                rays,
                &mut scratch,
                &mut out,
            );
            black_box(out.len())
        })
    });
    group.finish();

    // Index construction cost (amortized once per world).
    c.bench_function("geometry/index_build_140b", |b| {
        b.iter(|| black_box(dense.world.index()))
    });
}

criterion_group!(benches, bench_geometry);
criterion_main!(benches);
