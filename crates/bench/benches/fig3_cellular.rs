//! Criterion bench for the Figure 3 pipeline: the srsUE-style cell-search
//! sweep over the five-tower database, per scenario.

use aircal_cellular::{paper_towers, CellScanner};
use aircal_env::{Scenario, ScenarioKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cellular");
    for kind in [
        ScenarioKind::Rooftop,
        ScenarioKind::BehindWindow,
        ScenarioKind::Indoor,
    ] {
        let scenario = Scenario::build(kind);
        let db = paper_towers(&scenario.world.origin);
        let scanner = CellScanner::default();
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(scanner.scan(&scenario.world, &scenario.site, &db, black_box(7))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
