//! Criterion bench for the ADS-B PHY: frame encode, PPM round trip, CRC,
//! CPR, and the scanning decoder over a realistic multi-burst capture.

use aircal_adsb::{cpr, me::MePayload, AdsbFrame, Decoder, IcaoAddress};
use aircal_dsp::Cplx;
use aircal_sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;

fn test_frame(icao: u32) -> AdsbFrame {
    AdsbFrame::new(
        IcaoAddress::new(icao),
        MePayload::AirbornePosition {
            altitude_ft: 35_000.0,
            cpr: cpr::encode(37.9, -122.3, cpr::CprFormat::Even),
        },
    )
}

fn bench_phy(c: &mut Criterion) {
    let frame = test_frame(0xA1B2C3);
    let bytes = frame.encode();

    c.bench_function("adsb/frame_encode", |b| b.iter(|| black_box(frame.encode())));
    c.bench_function("adsb/frame_decode", |b| {
        b.iter(|| black_box(AdsbFrame::decode(black_box(&bytes)).unwrap()))
    });
    c.bench_function("adsb/crc24", |b| {
        b.iter(|| black_box(aircal_adsb::crc::crc24(black_box(&bytes[..11]))))
    });
    c.bench_function("adsb/cpr_encode", |b| {
        b.iter(|| black_box(cpr::encode(37.9, -122.3, cpr::CprFormat::Odd)))
    });
    c.bench_function("adsb/ppm_modulate", |b| {
        b.iter(|| black_box(aircal_adsb::ppm::modulate(black_box(&bytes), 0.5, 0.2)))
    });

    // A 50 ms capture with 20 bursts at healthy SNR, decoder throughput.
    let fe = Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6));
    let renderer = CaptureRenderer::new(fe.clone());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let plans: Vec<BurstPlan> = (0..20)
        .map(|i| BurstPlan {
            start_s: i as f64 * 2.5e-3,
            waveform: aircal_adsb::ppm::modulate(&test_frame(0x100 + i).encode(), 1.0, 0.0),
            rx_power_dbm: -80.0,
            phase0: i as f64,
        })
        .collect();
    let windows = renderer.render(&plans, &mut rng);
    let capture: Vec<Cplx> = windows.iter().flat_map(|w| w.samples.clone()).collect();
    let decoder = Decoder::default();

    let mut group = c.benchmark_group("adsb/decoder_scan");
    group.throughput(Throughput::Elements(capture.len() as u64));
    group.bench_function("20_bursts", |b| {
        b.iter(|| black_box(decoder.scan(black_box(&capture), 0.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_phy);
criterion_main!(benches);
