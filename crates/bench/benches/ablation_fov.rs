//! Criterion bench comparing the cost of the four FoV estimators (the
//! accuracy side of ablation A1 lives in the `ablations` binary).

use aircal_adsb::IcaoAddress;
use aircal_core::fov::{FovEstimator, FovMethod};
use aircal_core::survey::SurveyPoint;
use aircal_geo::Sector;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn synthetic_points(n: usize) -> Vec<SurveyPoint> {
    let open = Sector::centered(270.0, 120.0);
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 360.0 / n as f64) % 360.0;
            let range = 5_000.0 + (i as f64 * 7_919.0) % 95_000.0;
            let observed = (open.contains(bearing) && range <= 95_000.0) || range < 15_000.0;
            SurveyPoint {
                icao: IcaoAddress::new(i as u32 + 1),
                callsign: format!("SYN{i:03}"),
                bearing_deg: bearing,
                range_m: range,
                altitude_m: 9_000.0,
                observed,
                messages: usize::from(observed) * 10,
                mean_rssi_dbfs: observed.then_some(-30.0),
            }
        })
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    let points = synthetic_points(400);
    let mut group = c.benchmark_group("ablation_fov");
    for method in [
        FovMethod::default_histogram(),
        FovMethod::default_knn(),
        FovMethod::default_svm(),
        FovMethod::default_logistic(),
    ] {
        let est = FovEstimator::new(method);
        group.bench_function(method.name(), |b| {
            b.iter(|| black_box(est.estimate(black_box(&points))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
