//! Criterion bench for the DSP substrate kernels every measurement chain
//! runs on: FFT, FIR filtering, and the band-power meter — plus the hot
//! paths this PR made fast: planner-backed FFT, overlap-save FIR, and
//! the decoder's power-gated preamble scan.

use aircal_adsb::decoder::gated_preamble_correlation;
use aircal_dsp::corr::normalized_correlation;
use aircal_dsp::fir::{design_bandpass, design_lowpass};
use aircal_dsp::window::Window;
use aircal_dsp::{fft, BandPowerMeter, Cplx, FastFirFilter, FftPlanner, FirFilter};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn tone(n: usize) -> Vec<Cplx> {
    (0..n).map(|i| Cplx::phasor(0.123 * i as f64)).collect()
}

fn bench_dsp(c: &mut Criterion) {
    // FFT 4096: per-call (recomputes twiddles) vs planner (tables built once).
    let buf = tone(4096);
    let mut group = c.benchmark_group("dsp/fft");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("fft_4096", |b| b.iter(|| black_box(fft(black_box(&buf)).unwrap())));
    let plan = FftPlanner::new(4096).unwrap();
    group.bench_function("planner_fft_4096", |b| {
        b.iter(|| black_box(plan.forward(black_box(&buf)).unwrap()))
    });
    group.finish();

    // 129-tap complex bandpass over 10k samples.
    let taps = design_bandpass(0.1, 0.2, 129, Window::Blackman).unwrap();
    let x = tone(10_000);
    let mut group = c.benchmark_group("dsp/fir");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("bandpass_129tap_10k", |b| {
        b.iter(|| {
            let mut f = FirFilter::new(taps.clone()).unwrap();
            black_box(f.process(black_box(&x)))
        })
    });
    group.finish();

    // Overlap-save vs direct convolution at the TV bandpass tap counts.
    let x = tone(40_000);
    for taps in [63usize, 255, 1023] {
        let h = design_bandpass(0.05, 0.25, taps, Window::Blackman).unwrap();
        let mut group = c.benchmark_group(&format!("dsp/fir_{taps}tap_40k"));
        group.throughput(Throughput::Elements(40_000));
        group.sample_size(10);
        let direct = FirFilter::new(h.clone()).unwrap();
        group.bench_function("direct", |b| {
            b.iter(|| {
                let mut f = direct.clone();
                black_box(f.process(black_box(&x)))
            })
        });
        let fast = FastFirFilter::new(h).unwrap();
        group.bench_function("overlap_save", |b| {
            b.iter(|| {
                let mut f = fast.clone();
                black_box(f.process(black_box(&x)))
            })
        });
        group.finish();
    }

    // Gated vs ungated preamble scan over a mostly-noise capture (the
    // decoder's actual workload: bursts are rare, noise is not).
    let mut capture = tone(100_000);
    for s in capture.iter_mut() {
        *s = s.scale(0.002);
    }
    let burst = aircal_adsb::ppm::modulate_bytes(&[0x8Du8; 14], 0.4, 0.3);
    capture[20_000..20_000 + burst.len()].copy_from_slice(&burst);
    let template = aircal_adsb::ppm::preamble_template();
    let mut group = c.benchmark_group("adsb/preamble_scan_100k");
    group.throughput(Throughput::Elements(100_000));
    group.sample_size(10);
    group.bench_function("ungated", |b| {
        b.iter(|| black_box(normalized_correlation(black_box(&capture), &template)))
    });
    group.bench_function("gated", |b| {
        b.iter(|| black_box(gated_preamble_correlation(black_box(&capture), 0.60)))
    });
    group.finish();

    // Filter design itself.
    c.bench_function("dsp/design_lowpass_129", |b| {
        b.iter(|| black_box(design_lowpass(0.1, 129, Window::Blackman).unwrap()))
    });

    // The paper's TV measurement chain over a 40k capture.
    let capture = tone(40_000);
    let mut group = c.benchmark_group("dsp/band_power");
    group.throughput(Throughput::Elements(40_000));
    group.bench_function("meter_40k", |b| {
        b.iter(|| {
            let mut m = BandPowerMeter::new(0.0, 5.38e6, 8e6, 129, 16_384).unwrap();
            black_box(m.measure_dbfs(black_box(&capture)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dsp);
criterion_main!(benches);
