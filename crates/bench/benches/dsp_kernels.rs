//! Criterion bench for the DSP substrate kernels every measurement chain
//! runs on: FFT, FIR filtering, and the band-power meter.

use aircal_dsp::fir::{design_bandpass, design_lowpass};
use aircal_dsp::window::Window;
use aircal_dsp::{fft, BandPowerMeter, Cplx, FirFilter};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn tone(n: usize) -> Vec<Cplx> {
    (0..n).map(|i| Cplx::phasor(0.123 * i as f64)).collect()
}

fn bench_dsp(c: &mut Criterion) {
    // FFT 4096.
    let buf = tone(4096);
    let mut group = c.benchmark_group("dsp/fft");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("fft_4096", |b| b.iter(|| black_box(fft(black_box(&buf)).unwrap())));
    group.finish();

    // 129-tap complex bandpass over 10k samples.
    let taps = design_bandpass(0.1, 0.2, 129, Window::Blackman).unwrap();
    let x = tone(10_000);
    let mut group = c.benchmark_group("dsp/fir");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("bandpass_129tap_10k", |b| {
        b.iter(|| {
            let mut f = FirFilter::new(taps.clone()).unwrap();
            black_box(f.process(black_box(&x)))
        })
    });
    group.finish();

    // Filter design itself.
    c.bench_function("dsp/design_lowpass_129", |b| {
        b.iter(|| black_box(design_lowpass(0.1, 129, Window::Blackman).unwrap()))
    });

    // The paper's TV measurement chain over a 40k capture.
    let capture = tone(40_000);
    let mut group = c.benchmark_group("dsp/band_power");
    group.throughput(Throughput::Elements(40_000));
    group.bench_function("meter_40k", |b| {
        b.iter(|| {
            let mut m = BandPowerMeter::new(0.0, 5.38e6, 8e6, 129, 16_384).unwrap();
            black_box(m.measure_dbfs(black_box(&capture)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dsp);
criterion_main!(benches);
