//! Criterion bench for the Figure 4 pipeline: one full TV channel
//! measurement (8VSB synthesis → front end → bandpass/|x|²/moving-average)
//! and the six-channel sweep.

use aircal_env::{Scenario, ScenarioKind};
use aircal_tv::{paper_tv_towers, TvPowerProbe};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tv(c: &mut Criterion) {
    let scenario = Scenario::build(ScenarioKind::Rooftop);
    let towers = paper_tv_towers(&scenario.world.origin);
    let probe = TvPowerProbe::default();

    let mut group = c.benchmark_group("fig4_tv");
    group.sample_size(10);
    group.bench_function("measure_one_channel", |b| {
        b.iter(|| {
            black_box(probe.measure(&scenario.world, &scenario.site, &towers[0], black_box(3)))
        })
    });
    group.bench_function("sweep_six_channels", |b| {
        b.iter(|| black_box(probe.sweep(&scenario.world, &scenario.site, &towers, black_box(3))))
    });
    group.finish();
}

criterion_group!(benches, bench_tv);
criterion_main!(benches);
