//! Regenerate **Figure 3**: cellular RSRP at the three locations, five
//! towers — the rows behind the paper's grouped bar chart. A missing bar
//! ("the signal was too weak for srsUE to decode") prints as `----`.
//!
//! ```sh
//! cargo run --release -p aircal-bench --bin fig3 [--seed N]
//! ```

use aircal_bench::parse_args;
use aircal_cellular::{paper_towers, CellScanner};
use aircal_env::paper_scenarios;

fn main() {
    let (_, seed) = parse_args();
    let scanner = CellScanner::default();
    let scenarios = paper_scenarios();

    println!("# Figure 3 — RSRP (dBm) per tower per location, seed {seed}");
    print!("{:16}", "location");
    let db = paper_towers(&scenarios[0].world.origin);
    for t in db.all() {
        print!(" {:>14}", format!("{} ({:.0})", t.name, t.dl_freq_hz() / 1e6));
    }
    println!();

    for s in &scenarios {
        let db = paper_towers(&s.world.origin);
        print!("{:16}", s.site.name);
        for m in scanner.scan(&s.world, &s.site, &db, seed) {
            match m.rsrp_dbm {
                Some(v) => print!(" {v:>14.1}"),
                None => print!(" {:>14}", "----"),
            }
        }
        println!();
    }

    println!("\n# paper shape: rooftop decodes all 5 (strong); window decodes towers 1–3");
    println!("# (attenuated); indoor decodes only tower 1 — 700 MHz penetrates buildings.");
}
