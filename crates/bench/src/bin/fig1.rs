//! Regenerate **Figure 1**: ADS-B performance for measuring directionality.
//!
//! Prints, per location, the full point series the paper plots (one row
//! per ground-truth aircraft: bearing, range, observed) plus the figure's
//! headline statistics. Run a single panel with `fig1 rooftop|window|indoor`.
//!
//! ```sh
//! cargo run --release -p aircal-bench --bin fig1 [-- rooftop] [--seed N]
//! ```

use aircal_bench::{paper_survey, parse_args};
use aircal_env::{paper_scenarios, Scenario, ScenarioKind};
use aircal_geo::Sector;

fn main() {
    let (positional, seed) = parse_args();
    let scenarios: Vec<Scenario> = match positional.first() {
        Some(name) => match ScenarioKind::parse(name) {
            Some(kind) => vec![Scenario::build(kind)],
            None => {
                eprintln!("unknown scenario '{name}' (rooftop|window|indoor|open|canyon)");
                std::process::exit(2);
            }
        },
        None => paper_scenarios(),
    };

    for s in &scenarios {
        let r = paper_survey(s, seed);
        let panel = match s.kind {
            ScenarioKind::Rooftop => "(a) Rooftop at ①",
            ScenarioKind::BehindWindow => "(b) Behind window at ②",
            ScenarioKind::Indoor => "(c) Inside building at ③",
            _ => "(extra)",
        };
        println!("# Figure 1{panel} — site '{}' seed {seed}", s.site.name);
        println!("# shaded (ground-truth) open sector: {:.0}° wide @ {:.0}°",
            s.expected_fov.width_deg, s.expected_fov.center_deg());
        println!("bearing_deg,range_km,altitude_m,observed,messages");
        for p in &r.points {
            println!(
                "{:.1},{:.2},{:.0},{},{}",
                p.bearing_deg,
                p.range_m / 1_000.0,
                p.altitude_m,
                if p.observed { "blue" } else { "gray" },
                p.messages
            );
        }

        // The figure's headline claims, as measured here: long-range
        // observation *rates* in vs out of the shaded sector, and the
        // close-in multipath rate. (Single max-range outliers exist in the
        // paper's scatter too; rates are the robust shape statistic.)
        let out_sector = Sector::new(s.expected_fov.end_deg(), 360.0 - s.expected_fov.width_deg);
        let rate = |sector: &Sector, lo: f64, hi: f64| -> (usize, usize) {
            let in_band: Vec<_> = r
                .points
                .iter()
                .filter(|p| sector.contains(p.bearing_deg) && p.range_m >= lo && p.range_m < hi)
                .collect();
            (in_band.iter().filter(|p| p.observed).count(), in_band.len())
        };
        let (in_obs, in_tot) = rate(&s.expected_fov, 50_000.0, 200_000.0);
        let (out_obs, out_tot) = rate(&out_sector, 50_000.0, 200_000.0);
        let (cl_obs, cl_tot) = rate(&Sector::full(), 0.0, 20_000.0);
        let pct = |o: usize, t: usize| {
            if t == 0 {
                "n/a".to_string()
            } else {
                format!("{:.0}%", o as f64 / t as f64 * 100.0)
            }
        };
        println!(
            "# summary: observed {}/{} | >50 km observed in-sector {in_obs}/{in_tot} ({}) vs out {out_obs}/{out_tot} ({}) | <20 km {cl_obs}/{cl_tot} ({})\n",
            r.points.iter().filter(|p| p.observed).count(),
            r.points.len(),
            pct(in_obs, in_tot),
            pct(out_obs, out_tot),
            pct(cl_obs, cl_tot),
        );
    }
}
