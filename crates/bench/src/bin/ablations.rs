//! Ablation experiments A1–A5 (see DESIGN.md §4).
//!
//! ```sh
//! cargo run --release -p aircal-bench --bin ablations [-- a1|…|a8] [--seed N]
//! ```
//!
//! * **A1** — FoV estimator comparison (histogram / KNN / SVM / logistic).
//! * **A2** — capture-duration sweep (how long must a survey run?).
//! * **A3** — ground-truth latency sensitivity (how stale may FR24 be?).
//! * **A4** — ADS-B decoder success vs SNR (the PHY threshold).
//! * **A5** — fault injection and trust scoring.
//! * **A6** — 5G NR extension including 28 GHz millimeter wave.
//! * **A7** — repetition stability and pooled estimation.
//! * **A8** — 1090 MHz channel congestion (squitter collisions).

use aircal_bench::{parse_args, paper_traffic};
use aircal_core::fov::{FovEstimator, FovMethod};
use aircal_core::survey::{run_survey, SurveyConfig};
use aircal_core::trust::{fabricate_survey, TrustAuditor};
use aircal_core::freqprofile::FrequencyProfiler;
use aircal_env::{all_scenarios, Scenario, ScenarioKind};
use aircal_sdr::FrontendFault;

fn main() {
    let (positional, seed) = parse_args();
    let which = positional.first().map(|s| s.as_str()).unwrap_or("all");
    if matches!(which, "a1" | "all") {
        a1_estimators(seed);
    }
    if matches!(which, "a2" | "all") {
        a2_duration(seed);
    }
    if matches!(which, "a3" | "all") {
        a3_latency(seed);
    }
    if matches!(which, "a4" | "all") {
        a4_decode_snr(seed);
    }
    if matches!(which, "a5" | "all") {
        a5_faults(seed);
    }
    if matches!(which, "a6" | "all") {
        a6_nr_mmwave(seed);
    }
    if matches!(which, "a7" | "all") {
        a7_repetition(seed);
    }
    if matches!(which, "a8" | "all") {
        a8_congestion(seed);
    }
}

/// A8: 1090 MHz channel congestion. Every aircraft shares one channel;
/// overlapping squitters garble each other (the renderer superimposes
/// them and the CRC rejects the mash). As the disc fills up, per-message
/// decode probability falls — the real-world "1090 FRUIT" problem, and a
/// limit on how much traffic actually helps a survey.
fn a8_congestion(seed: u64) {
    use aircal_aircraft::{TrafficConfig, TrafficSim, TransponderSchedule};

    println!("# A8 — 1090 MHz congestion: decode rate vs traffic density (open field, 10 s)");
    println!(
        "{:>10} {:>11} {:>9} {:>13} {:>12}",
        "aircraft", "on_air_msgs", "decoded", "decode_rate", "aircraft_obs"
    );
    let s = Scenario::build(ScenarioKind::OpenField);
    for count in [20usize, 50, 100, 200, 400] {
        let traffic = TrafficSim::generate(
            TrafficConfig {
                count,
                radius_m: 60_000.0, // keep every link SNR-viable: loss => collisions
                ..TrafficConfig::paper_default(s.site.position)
            },
            seed,
        );
        let cfg = SurveyConfig {
            duration_s: 10.0,
            query_time_s: 5.0,
            radius_m: 60_000.0,
            ..SurveyConfig::default()
        };
        let on_air = TransponderSchedule::default()
            .emissions(&traffic.flights, 0.0, cfg.duration_s, seed ^ 0x5EED)
            .len();
        let r = run_survey(&s.world, &s.site, &traffic, &cfg, seed);
        println!(
            "{:>10} {:>11} {:>9} {:>12.1}% {:>11.0}%",
            count,
            on_air,
            r.total_messages,
            r.total_messages as f64 / on_air as f64 * 100.0,
            r.observation_rate() * 100.0,
        );
    }
    println!("# per-message decode rate falls with density (collisions), but per-aircraft");
    println!("# observation stays high: any one of dozens of squitters suffices — the");
    println!("# paper's binary matching is inherently congestion-tolerant.\n");
}

/// A6: extending the frequency-response technique to 5G NR, including
/// millimeter wave ("5G also supports millimeter-wave bands from 24 to
/// 48 GHz") — FR2 is measurable only with a clear line of sight.
fn a6_nr_mmwave(seed: u64) {
    use aircal_cellular::{nr_extension_cells, CellScanner};
    use aircal_env::paper_scenarios;
    println!("# A6 — 5G NR extension (RSRP dBm; ---- = no sync)");
    let scanner = CellScanner::default();
    let scenarios = paper_scenarios();
    let cells = nr_extension_cells(&scenarios[0].world.origin);
    print!("{:16}", "location");
    for c in &cells {
        print!(" {:>16}", format!("{} ({:.1}G)", c.name, c.dl_freq_hz() / 1e9));
    }
    println!();
    for s in &scenarios {
        let cells = nr_extension_cells(&s.world.origin);
        print!("{:16}", s.site.name);
        for m in scanner.scan_nr(&s.world, &s.site, &cells, seed) {
            match m.rsrp_dbm {
                Some(v) => print!(" {v:>16.1}"),
                None => print!(" {:>16}", "----"),
            }
        }
        println!();
    }
    println!("# 28 GHz survives only on the rooftop: at mmWave, *any* obstruction is fatal,");
    println!("# so an FR2 measurement is itself a line-of-sight detector.\n");
}

/// A7: the paper's repetition methodology — "repeated these experiments
/// over 10 times … obtaining similar results".
fn a7_repetition(seed: u64) {
    use aircal_core::repeat::run_repeated;
    println!("# A7 — estimate stability over repeated surveys (5 runs, fresh traffic each)");
    println!(
        "{:16} {:>14} {:>12} {:>12}",
        "location", "pairwise_IoU", "pooled_IoU", "obs_rate"
    );
    for s in aircal_env::paper_scenarios() {
        let rep = run_repeated(&s.world, &s.site, &SurveyConfig::default(), 70, 5, seed);
        let stab = rep.stability(&FovEstimator::default());
        let pooled_iou = if s.expected_fov.width_deg == 0.0 {
            1.0 - stab.pooled.open_fraction()
        } else {
            stab.pooled.iou(&s.expected_fov)
        };
        println!(
            "{:16} {:>14.2} {:>12.2} {:>11.0}%",
            s.site.name,
            stab.mean_pairwise_iou,
            pooled_iou,
            rep.overall_observation_rate() * 100.0
        );
    }
    println!();
}

/// A1: estimator quality (IoU vs scenario ground truth, 3 seeds averaged).
/// The (scenario × seed) surveys are independent, so they fan out over
/// worker threads and only the estimator scoring runs per row.
fn a1_estimators(seed: u64) {
    println!("# A1 — FoV estimator comparison (IoU vs ground truth, mean of 3 seeds)");
    let methods = [
        FovMethod::default_histogram(),
        FovMethod::default_knn(),
        FovMethod::default_svm(),
        FovMethod::default_logistic(),
    ];
    print!("{:16}", "scenario");
    for m in &methods {
        print!(" {:>18}", m.name());
    }
    println!();
    let scenarios = all_scenarios();
    let jobs: Vec<(usize, u64)> = (0..scenarios.len())
        .flat_map(|si| (0..3u64).map(move |k| (si, seed + k)))
        .collect();
    let threads = aircal_dsp::resolve_parallelism(0);
    let surveys = aircal_dsp::par_map(&jobs, threads, |_, &(si, s)| {
        survey_with(&scenarios[si], SurveyConfig::default(), s)
    });
    for (si, s) in scenarios.iter().enumerate() {
        print!("{:16}", s.site.name);
        for m in &methods {
            let iou_sum: f64 = jobs
                .iter()
                .zip(&surveys)
                .filter(|((ji, _), _)| *ji == si)
                .map(|(_, r)| {
                    let est = FovEstimator::new(*m).estimate(&r.points);
                    if s.expected_fov.width_deg == 0.0 {
                        // No true FoV: score = 1 − open fraction (reward
                        // calling the sky closed).
                        1.0 - est.open_fraction()
                    } else {
                        est.iou(&s.expected_fov)
                    }
                })
                .sum();
            print!(" {:>18.2}", iou_sum / 3.0);
        }
        println!();
    }
    println!();
}

/// A2: capture duration sweep on the rooftop scenario.
fn a2_duration(seed: u64) {
    println!("# A2 — capture duration vs FoV quality (rooftop)");
    println!("{:>12} {:>10} {:>10} {:>8}", "duration_s", "observed", "messages", "IoU");
    let s = Scenario::build(ScenarioKind::Rooftop);
    for duration in [5.0, 10.0, 20.0, 30.0, 60.0, 120.0] {
        let cfg = SurveyConfig {
            duration_s: duration,
            query_time_s: duration / 2.0,
            ..SurveyConfig::default()
        };
        let r = survey_with(&s, cfg, seed);
        let est = FovEstimator::default().estimate(&r.points);
        println!(
            "{:>12.0} {:>10} {:>10} {:>8.2}",
            duration,
            r.points.iter().filter(|p| p.observed).count(),
            r.total_messages,
            est.iou(&s.expected_fov),
        );
    }
    println!("# ~flat: 5 s already samples every squittering aircraft at ≥2 Hz, and the");
    println!("# single mid-capture ground-truth snapshot grows stale as the window lengthens,");
    println!("# offsetting the extra messages — the paper's 30 s buys margin, not accuracy.\n");
}

/// A3: ground-truth latency sensitivity (rooftop).
fn a3_latency(seed: u64) {
    println!("# A3 — ground-truth (FlightRadar24) latency sensitivity (rooftop)");
    println!("{:>11} {:>9} {:>11} {:>8}", "latency_s", "matched", "unmatched", "IoU");
    let s = Scenario::build(ScenarioKind::Rooftop);
    for latency in [0.0, 5.0, 10.0, 30.0, 60.0] {
        let cfg = SurveyConfig {
            ground_truth_latency_s: latency,
            ..SurveyConfig::default()
        };
        let r = survey_with(&s, cfg, seed);
        let est = FovEstimator::default().estimate(&r.points);
        println!(
            "{:>11.0} {:>9} {:>11} {:>8.2}",
            latency,
            r.points.iter().filter(|p| p.observed).count(),
            r.unmatched_messages,
            est.iou(&s.expected_fov),
        );
    }
    println!("# the paper's 10 s latency (≤2.5 km position error) barely moves the estimate;");
    println!("# a minute of staleness starts mislabeling aircraft near the disc edge.\n");
}

/// A4: decoder success vs SNR — the PHY threshold behind every figure.
fn a4_decode_snr(seed: u64) {
    use aircal_adsb::{cpr, me::MePayload, AdsbFrame, Decoder, IcaoAddress};
    use aircal_sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig};
    use rand::SeedableRng;

    println!("# A4 — ADS-B decode probability vs SNR (100 frames per point)");
    println!("{:>8} {:>10}", "snr_db", "p_decode");
    let fe = Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6));
    let renderer = CaptureRenderer::new(fe.clone());
    let decoder = Decoder::default();
    let frame = AdsbFrame::new(
        IcaoAddress::new(0xABCDEF),
        MePayload::AirbornePosition {
            altitude_ft: 35_000.0,
            cpr: cpr::encode(37.9, -122.3, cpr::CprFormat::Even),
        },
    );
    let waveform = aircal_adsb::ppm::modulate(&frame.encode(), 1.0, 0.0);
    let floor = fe.noise_floor_dbm();
    // Each SNR point has its own RNG, so the points fan out over workers
    // and print in order afterwards — same numbers as the serial loop.
    let snrs = [-2.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0];
    let threads = aircal_dsp::resolve_parallelism(0);
    let rates = aircal_dsp::par_map(&snrs, threads, |_, &snr| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (snr * 10.0) as u64);
        let mut ok = 0;
        for i in 0..100 {
            let plans = [BurstPlan {
                start_s: 0.0,
                waveform: waveform.clone(),
                rx_power_dbm: floor + snr,
                phase0: i as f64 * 0.37,
            }];
            let windows = renderer.render(&plans, &mut rng);
            if windows
                .iter()
                .any(|w| !decoder.scan(&w.samples, w.start_s).is_empty())
            {
                ok += 1;
            }
        }
        ok as f64 / 100.0
    });
    for (snr, rate) in snrs.iter().zip(&rates) {
        println!("{snr:>8.1} {rate:>10.2}");
    }
    println!("# everything upstream (95 km open-sector reach, ~20 km through-wall reach)");
    println!("# follows from where this curve crosses ~50%.\n");
}

/// A5: fault injection and what the auditor reports.
fn a5_faults(seed: u64) {
    println!("# A5 — fault injection vs trust score (open-field site)");
    let s = Scenario::build(ScenarioKind::OpenField);
    let traffic = paper_traffic(&s, seed);
    let cells = aircal_cellular::paper_towers(&s.world.origin);
    let tv = aircal_tv::paper_tv_towers(&s.world.origin);

    println!(
        "{:22} {:>9} {:>9} {:>7}  flags",
        "condition", "observed", "bands", "trust"
    );
    let conditions: [(&str, FrontendFault); 5] = [
        ("healthy", FrontendFault::None),
        ("cable loss 8 dB", FrontendFault::CableLoss { db: 8.0 }),
        ("cable loss 25 dB", FrontendFault::CableLoss { db: 25.0 }),
        (
            "deaf above 900 MHz",
            FrontendFault::DeafAbove {
                cutoff_hz: 900e6,
                loss_db: 65.0,
            },
        ),
        ("dead", FrontendFault::Dead),
    ];
    for (label, fault) in conditions {
        let cfg = SurveyConfig {
            fault,
            ..SurveyConfig::default()
        };
        let r = run_survey(&s.world, &s.site, &traffic, &cfg, seed);
        let mut profiler = FrequencyProfiler::default();
        profiler.scanner.config.fault = fault;
        profiler.tv_probe.config.fault = fault;
        let profile = profiler.profile(&s.world, &s.site, &cells, &tv, seed);
        let est = FovEstimator::default().estimate(&r.points);
        let trust = TrustAuditor::default().audit(&r, &profile, &traffic, est.open_fraction());
        println!(
            "{:22} {:>8.0}% {:>8.0}% {:>7.0}  {}",
            label,
            r.observation_rate() * 100.0,
            profile.usable_fraction() * 100.0,
            trust.score,
            if trust.flags.is_empty() { "-".into() } else { trust.flags.join("; ") }
        );
    }
    // Fabrication.
    let honest = run_survey(&s.world, &s.site, &traffic, &SurveyConfig::default(), seed);
    let profile = FrequencyProfiler::default().profile(&s.world, &s.site, &cells, &tv, seed);
    let fake = fabricate_survey(&honest, honest.total_messages / 12);
    let est = FovEstimator::default().estimate(&fake.points);
    let trust = TrustAuditor::default().audit(&fake, &profile, &traffic, est.open_fraction());
    println!(
        "{:22} {:>8.0}% {:>8.0}% {:>7.0}  {}",
        "fabricated data",
        fake.observation_rate() * 100.0,
        profile.usable_fraction() * 100.0,
        trust.score,
        trust.flags.join("; ")
    );
    println!();
}

fn survey_with(
    s: &Scenario,
    cfg: SurveyConfig,
    seed: u64,
) -> aircal_core::survey::SurveyResult {
    let traffic = paper_traffic(s, seed);
    run_survey(&s.world, &s.site, &traffic, &cfg, seed)
}
