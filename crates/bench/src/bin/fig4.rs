//! Regenerate **Figure 4**: broadcast-TV band power (dBFS) at the three
//! locations, six channels, through the paper's exact measurement chain
//! (bandpass FIR → |x|² → very long moving average on simulated IQ).
//!
//! ```sh
//! cargo run --release -p aircal-bench --bin fig4 [--seed N]
//! ```

use aircal_bench::parse_args;
use aircal_env::paper_scenarios;
use aircal_tv::{paper_tv_towers, TvPowerProbe};

fn main() {
    let (_, seed) = parse_args();
    let probe = TvPowerProbe::default();
    let scenarios = paper_scenarios();

    println!("# Figure 4 — received signal strength (dBFS) per ATSC channel, seed {seed}");
    let towers = paper_tv_towers(&scenarios[0].world.origin);
    print!("{:16}", "location");
    for t in &towers {
        print!(" {:>9.0} MHz", t.channel.center_hz() / 1e6);
    }
    println!();

    let mut per_loc = Vec::new();
    for s in &scenarios {
        let towers = paper_tv_towers(&s.world.origin);
        let sweep = probe.sweep(&s.world, &s.site, &towers, seed);
        print!("{:16}", s.site.name);
        for m in &sweep {
            print!(" {:>13.1}", m.power_dbfs);
        }
        println!();
        per_loc.push(sweep);
    }

    // The figure's qualitative outlier check.
    let idx_521 = per_loc[0].iter().position(|m| m.rf_channel == 22).unwrap();
    println!(
        "\n# 521 MHz outlier: window {:.1} dBFS vs rooftop {:.1} dBFS — \"the tower",
        per_loc[1][idx_521].power_dbfs, per_loc[0][idx_521].power_dbfs
    );
    println!("# broadcasting at this frequency is in the field of view of the sensor\".");
    println!("# paper shape: all locations keep usable sub-600 MHz signal; rooftop strongest overall.");
}
