//! Regenerate **Figure 2**: the mobile-network experiment testbed map, as
//! a table of tower geometry relative to the experiment site (the paper's
//! figure is a map screenshot; the underlying content is the tower set,
//! their distances — "500 to 1000 meters from the experiment site" — and
//! their carriers).
//!
//! ```sh
//! cargo run --release -p aircal-bench --bin fig2map
//! ```

use aircal_cellular::paper_towers;
use aircal_env::scenarios::testbed_origin;
use aircal_tv::paper_tv_towers;

fn main() {
    let origin = testbed_origin();
    println!(
        "# Figure 2 — testbed geometry around the experiment site ({:.4}, {:.4})",
        origin.lat_deg, origin.lon_deg
    );
    println!("\n## Cellular towers (paper: downlink 731/1970/2145/2660/2680 MHz)");
    println!(
        "{:8} {:>6} {:>9} {:>9} {:>8} {:>6} {:>6}",
        "name", "pci", "band", "freq_MHz", "brg_deg", "dist_m", "eirp"
    );
    for t in paper_towers(&origin).all() {
        println!(
            "{:8} {:>6} {:>9} {:>9.1} {:>8.0} {:>6.0} {:>6.1}",
            t.name,
            t.pci,
            t.band.name().split(' ').next().unwrap_or("?"),
            t.dl_freq_hz() / 1e6,
            origin.bearing_deg(&t.position),
            origin.distance_m(&t.position),
            t.eirp_dbm,
        );
    }

    println!("\n## TV transmitters (Figure 4 sources, up to 50 km away)");
    println!(
        "{:20} {:>4} {:>9} {:>8} {:>8} {:>6}",
        "station", "rf", "freq_MHz", "brg_deg", "dist_km", "erp"
    );
    for t in paper_tv_towers(&origin) {
        println!(
            "{:20} {:>4} {:>9.1} {:>8.0} {:>8.1} {:>6.1}",
            t.name,
            t.channel.number(),
            t.channel.center_hz() / 1e6,
            origin.bearing_deg(&t.position),
            origin.distance_m(&t.position) / 1_000.0,
            t.erp_dbm,
        );
    }
}
