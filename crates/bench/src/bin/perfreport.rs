//! Pipeline performance report: times the survey→profile hot path and
//! writes `BENCH_PIPELINE.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p aircal-bench --bin perfreport \
//!     [-- --quick] [--seed N] [--threads N] [--check-allocs] [--check-perf] [--check-robust] [--check-scale] [--check-recovery]
//! ```
//!
//! Sections:
//!
//! * **kernels** — the runtime-selected DSP dispatch arm
//!   (`scalar`/`sse2`/`avx2`/`neon`) and per-kernel scalar-vs-dispatched
//!   throughput with a bit-identity cross-check. `--check-perf` enforces
//!   the simd-vs-scalar speedup floor when a vector ISA is dispatched;
//! * **adsb_decode** — decoder throughput over a rendered capture,
//!   Msamples/s;
//! * **preamble_scan** — power-gated preamble correlation vs the exact
//!   ungated scan (identical peaks, fewer FLOPs);
//! * **fir** — overlap-save [`FastFirFilter`] vs direct [`FirFilter`]
//!   at 63/255/1023 taps (the TV bandpass shapes);
//! * **survey / tv_sweep / calibrator** — wall clock at 1/2/4/8 worker
//!   threads, clamped to what the host actually has (bit-identical
//!   outputs; the knob trades time only). `--threads N` overrides the
//!   clamp, so a single-core CI box can still emit the full sweep;
//! * **geometry** — dense synthetic downtown: brute-force `path_profile`
//!   vs the spatial index vs the index + path memo, all three bit-compared.
//!   `--check-perf` enforces the speedup/hit-rate floors in
//!   `scripts/perf_budget.json` (non-zero exit on regression);
//! * **allocations** — steady-state allocator round-trips per burst on
//!   the survey, TV-channel, and cellular hot paths: the old allocating
//!   entry points vs the scratch (`*_with` / `*_into`) pipeline, counted
//!   by a wrapping global allocator. `--check-allocs` enforces the
//!   budgets in `scripts/alloc_budget.json` (non-zero exit on regression);
//! * **stage_latency / span_summary** — one traced calibration run:
//!   per-stage latency histograms (fixed `aircal-obs` bucket bounds)
//!   and aggregated span wall times for the instrumented kernels;
//! * **robustness** — an adversarial audit campaign (6 honest nodes,
//!   one node per adversary kind, 8 rounds): per-adversary first-anomaly
//!   and eviction rounds plus aggregate detection rate, false-quarantine
//!   rate, and worst-case detection latency. `--check-robust` enforces
//!   the floors in `scripts/robustness_budget.json` (non-zero exit when
//!   an adversary survives or an honest node is quarantined);
//! * **scale** — the discrete-event campaign engine at 100/1000/5000
//!   nodes: events processed, wall clock, events/s, plus a cheap
//!   parallelism-invariance cross-check (the workers=2 digest must
//!   match the timed serial run). `--check-scale` enforces the
//!   throughput floor in `scripts/scale_budget.json`.
//!
//! All numbers are wall-clock on whatever host runs this; `host_cores`
//! records how much hardware parallelism was actually available.

use aircal::net::{spawn_node, AdversaryKind, Cloud, NodeAgent, NodeBehavior, NodeHealth, RetryPolicy};
use aircal_adsb::decoder::gated_preamble_correlation;
use aircal_adsb::{cpr, me::MePayload, AdsbFrame, DecodeScratch, Decoder, IcaoAddress};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_bench::{parse_args, paper_traffic, AllocSnapshot, CountingAllocator};
use aircal_cellular::{paper_towers, CellScanner, CellScratch};
use aircal_core::engine::Calibrator;
use aircal_core::survey::{run_survey, SurveyConfig};
use aircal_dsp::corr::{find_peaks, normalized_correlation};
use aircal_dsp::fir::design_bandpass;
use aircal_dsp::window::Window;
use aircal_dsp::{derive_stream_seed, Cplx, DspScratch, FastFirFilter, FirFilter};
use aircal_env::scenarios::{dense_city, testbed_origin};
use aircal_env::{GeoScratch, PathCache, Scenario, ScenarioKind};
use std::sync::Arc;
use aircal_sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig};
use aircal_tv::{paper_tv_towers, TvPowerProbe, TvProbeConfig, TvScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[derive(Serialize)]
struct ThreadTiming {
    threads: usize,
    seconds: f64,
    speedup_vs_serial: f64,
}

/// A 1/2/4/8-thread wall-clock sweep plus an explicit record of the
/// clamp that shaped it: on a single-core host the 2/4/8 rows are
/// skipped, and without this annotation the one-row table is
/// indistinguishable from a scaling failure.
#[derive(Serialize)]
struct ThreadSweep {
    /// True when the clamp removed at least one requested thread count.
    clamped: bool,
    /// The effective cap (host cores, or the `--threads` override).
    thread_cap: usize,
    host_cores: usize,
    /// Requested thread counts the clamp skipped.
    skipped_threads: Vec<usize>,
    rows: Vec<ThreadTiming>,
}

#[derive(Serialize)]
struct FirTiming {
    taps: usize,
    input_len: usize,
    direct_seconds: f64,
    overlap_save_seconds: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct DecodeTiming {
    samples: usize,
    messages: usize,
    seconds: f64,
    msamples_per_s: f64,
}

#[derive(Serialize)]
struct CorrTiming {
    samples: usize,
    ungated_seconds: f64,
    gated_seconds: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct StageLatency {
    stage: String,
    histogram: aircal_obs::Histogram,
}

#[derive(Serialize)]
struct AllocStats {
    bursts: usize,
    allocs_per_burst: f64,
    bytes_per_burst: f64,
}

#[derive(Serialize)]
struct AllocComparison {
    path: &'static str,
    allocating: AllocStats,
    scratch: AllocStats,
    /// Allocating/scratch allocation ratio. When the scratch path made
    /// zero allocations this is the allocating per-burst count itself —
    /// a finite "at least ×N" lower bound instead of infinity.
    reduction: f64,
}

/// Per-path ceilings on `scratch.allocs_per_burst`, from
/// `scripts/alloc_budget.json`.
#[derive(Deserialize)]
struct AllocBudget {
    survey_burst: f64,
    tv_channel: f64,
    cellular_tower: f64,
}

/// Dense-world geometry acceleration: one obstruction sweep timed three
/// ways. All three must agree bit for bit — the index and memo are pure
/// accelerators, never approximations.
#[derive(Serialize)]
struct GeometryTiming {
    buildings: usize,
    rays: usize,
    index_build_seconds: f64,
    brute_seconds: f64,
    indexed_seconds: f64,
    cached_seconds: f64,
    indexed_speedup: f64,
    cached_speedup: f64,
    cache_hit_rate: f64,
    bit_identical: bool,
}

/// Floors on the geometry section, from `scripts/perf_budget.json`.
#[derive(Deserialize)]
struct PerfBudget {
    min_indexed_speedup: f64,
    min_cached_speedup: f64,
    min_cache_hit_rate: f64,
    require_bit_identical: bool,
    /// Floor on the simd-vs-scalar speedup a kernel must clear to count
    /// toward `min_kernels_at_speedup`.
    min_kernel_speedup: f64,
    /// How many kernels must clear the speedup floor when a vector ISA
    /// is dispatched. Ignored (with a note) when dispatch == "scalar".
    min_kernels_at_speedup: usize,
}

/// One DSP kernel timed on both reduction arms. `bit_identical` is the
/// checksum cross-check for this specific workload; the exhaustive proof
/// lives in the `simd_equivalence` proptest suite.
#[derive(Serialize)]
struct KernelTiming {
    kernel: &'static str,
    elements: usize,
    scalar_msamples_per_s: f64,
    dispatched_msamples_per_s: f64,
    speedup: f64,
    bit_identical: bool,
}

/// The `kernels` section: the runtime-selected dispatch arm
/// (`scalar`/`sse2`/`avx2`/`neon`) and per-kernel scalar-vs-dispatched
/// throughput on an L1-resident workload.
#[derive(Serialize)]
struct KernelsReport {
    dispatch: &'static str,
    kernels: Vec<KernelTiming>,
}

/// One adversary's trip down the quarantine ladder during the campaign.
#[derive(Serialize)]
struct AdversaryOutcome {
    kind: &'static str,
    node: &'static str,
    /// First round the consistency pass flagged this node (0-based).
    first_anomaly_round: Option<u64>,
    /// Round the ladder reached `Evicted` (0-based).
    eviction_round: Option<u64>,
    evicted: bool,
}

/// Detection quality of the robust-aggregation layer under a standing
/// f < n/2 adversarial fleet.
#[derive(Serialize)]
struct RobustnessReport {
    rounds: u64,
    honest_nodes: usize,
    adversary_nodes: usize,
    adversaries: Vec<AdversaryOutcome>,
    /// Fraction of adversaries evicted by the end of the campaign.
    detection_rate: f64,
    /// Honest nodes that ever reached Quarantined or worse.
    false_quarantine_count: usize,
    false_quarantine_rate: f64,
    /// Worst-case rounds-to-eviction (eviction round + 1; the full
    /// campaign length + 1 when an adversary survived).
    max_detection_latency_rounds: u64,
    campaign_seconds: f64,
}

/// Floors/ceilings on the robustness section, from
/// `scripts/robustness_budget.json`.
#[derive(Deserialize)]
struct RobustBudget {
    min_detection_rate: f64,
    max_false_quarantine_rate: f64,
    max_detection_latency_rounds: u64,
}

/// One fleet size through the discrete-event campaign engine. The timed
/// run is serial (workers=1) so the throughput number measures the
/// engine, not the host's core count; a second untimed run at workers=2
/// cross-checks the parallelism-invariance contract via the digest.
#[derive(Serialize)]
struct ScaleTiming {
    nodes: usize,
    events: u64,
    seconds: f64,
    events_per_sec: f64,
    coverage90_tick: Option<u64>,
    digest: String,
    parallel_digest_matches: bool,
}

/// Floors on the scale section, from `scripts/scale_budget.json`.
#[derive(Deserialize)]
struct ScaleBudget {
    min_events_per_sec: f64,
    require_parallel_invariant: bool,
}

/// The campaign engine at each paper-regime fleet size. Fault pressure
/// matches the fleet_sim suite (lossy 0.3 / drop 0.5) so the events/s
/// here reflect a chaotic fleet, not an idle one. All three sizes run
/// even under `--quick` — the 5000-node campaign is sub-second in
/// release, and the scale gate is only meaningful at scale.
fn scale_campaigns(seed: u64) -> Vec<ScaleTiming> {
    use aircal::sim::{run, CampaignConfig};
    [100usize, 1000, 5000]
        .iter()
        .map(|&nodes| {
            let mut cfg = CampaignConfig::paper_default(nodes, seed);
            cfg.faults.lossy_fraction = 0.3;
            cfg.faults.drop_probability = 0.5;
            cfg.workers = 1;
            let t0 = Instant::now();
            let result = run(&cfg);
            let seconds = t0.elapsed().as_secs_f64();
            cfg.workers = 2;
            let parallel = run(&cfg);
            ScaleTiming {
                nodes,
                events: result.events,
                seconds,
                events_per_sec: result.events as f64 / seconds,
                coverage90_tick: result.coverage90_tick,
                parallel_digest_matches: parallel.digest == result.digest,
                digest: result.digest,
            }
        })
        .collect()
}

/// Enforce `scripts/scale_budget.json`: every fleet size must clear the
/// events/s floor and (when required) the workers=2 digest must match
/// the serial run bit for bit.
fn check_scale_budget(scale: &[ScaleTiming]) -> bool {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts/scale_budget.json");
    let text = std::fs::read_to_string(path).expect("read scripts/scale_budget.json");
    let budget: ScaleBudget = serde_json::from_str(&text).expect("parse scale budget");
    let mut ok = true;
    for s in scale {
        if s.events_per_sec < budget.min_events_per_sec {
            eprintln!(
                "# SCALE BUDGET EXCEEDED: {} nodes at {:.0} events/s (floor {:.0})",
                s.nodes, s.events_per_sec, budget.min_events_per_sec
            );
            ok = false;
        } else {
            eprintln!(
                "# scale budget ok: {} nodes at {:.0} events/s (floor {:.0})",
                s.nodes, s.events_per_sec, budget.min_events_per_sec
            );
        }
        if budget.require_parallel_invariant && !s.parallel_digest_matches {
            eprintln!(
                "# SCALE BUDGET EXCEEDED: {} nodes workers=2 digest diverged from serial",
                s.nodes
            );
            ok = false;
        }
    }
    ok
}

/// Crash-recovery drill: a 1000-node campaign through the engine with
/// periodic cloud crashes, duplicate/reorder delivery faults, and a
/// fault-free twin to diff the final cloud digest against, plus a
/// journal-replay micro-benchmark (records/s through
/// [`aircal::core::wal::Journal::open`]) that prices the recovery path
/// itself.
#[derive(Serialize)]
struct RecoverySection {
    nodes: usize,
    crashes: u64,
    wal_appends: u64,
    wal_syncs: u64,
    replayed_records: u64,
    recovery_ticks: u64,
    deduped_reports: u64,
    duplicated_deliveries: u64,
    reordered_deliveries: u64,
    campaign_seconds: f64,
    /// Final cloud digest of the faulted campaign equals the fault-free
    /// twin's, bit for bit.
    bit_identical: bool,
    invariant_violations: usize,
    journal_replay_records: u64,
    journal_replay_seconds: f64,
    journal_replay_records_per_sec: f64,
}

/// Floors on the recovery section, from `scripts/recovery_budget.json`.
#[derive(Deserialize)]
struct RecoveryBudget {
    min_crashes: u64,
    require_bit_identical: bool,
    max_invariant_violations: u64,
    min_replay_records_per_sec: f64,
}

fn recovery_drill(seed: u64, reps: usize) -> RecoverySection {
    use aircal::core::wal::{Journal, WalRecord};
    use aircal::sim::{run, CampaignConfig};

    let nodes = 1000usize;
    let mut cfg = CampaignConfig::paper_default(nodes, seed);
    cfg.recovery.crash_ticks = (1..cfg.max_ticks / 120).map(|i| i * 120).collect();
    cfg.recovery.duplicate_fraction = 0.3;
    cfg.recovery.reorder_fraction = 0.3;
    let t0 = Instant::now();
    let faulted = run(&cfg);
    let campaign_seconds = t0.elapsed().as_secs_f64();
    let clean = run(&CampaignConfig::paper_default(nodes, seed));
    let bit_identical = faulted.state_digest == clean.state_digest
        && faulted.trust_table == clean.trust_table;

    // Journal replay micro-benchmark: a synced journal of dispatch +
    // report frames, reopened cold — the dominant cost of a real
    // recovery is exactly this scan.
    let replay_records = 200_000u64;
    let mut journal = Journal::new(1 << 20);
    for i in 0..replay_records / 2 {
        journal.append(&WalRecord::Dispatch {
            node: i % nodes as u64,
            kind: (i % 3) as u8,
            seq: i,
            tick: i,
        });
        journal.append(&WalRecord::ReportApplied {
            node: i % nodes as u64,
            kind: (i % 3) as u8,
            seq: i,
            value_bits: (i as f64).to_bits(),
            tick: i + 1,
        });
    }
    journal.sync();
    let bytes = journal.to_bytes();
    let journal_replay_seconds = time_best(reps, || {
        let (j, report) = Journal::open(&bytes, 1 << 20);
        assert_eq!(report.recovered, replay_records);
        std::hint::black_box(j.len_bytes())
    });

    RecoverySection {
        nodes,
        crashes: faulted.recoveries,
        wal_appends: faulted.wal_appends,
        wal_syncs: faulted.wal_syncs,
        replayed_records: faulted.replayed_records,
        recovery_ticks: faulted.recovery_ticks,
        deduped_reports: faulted.deduped_reports,
        duplicated_deliveries: faulted.duplicated_deliveries,
        reordered_deliveries: faulted.reordered_deliveries,
        campaign_seconds,
        bit_identical,
        invariant_violations: faulted.invariant_violations.len(),
        journal_replay_records: replay_records,
        journal_replay_seconds,
        journal_replay_records_per_sec: replay_records as f64 / journal_replay_seconds,
    }
}

/// Enforce `scripts/recovery_budget.json`: the drill must actually
/// crash, recovery must be bit-identical with zero invariant
/// violations, and journal replay must clear its throughput floor.
fn check_recovery_budget(r: &RecoverySection) -> bool {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts/recovery_budget.json");
    let text = std::fs::read_to_string(path).expect("read scripts/recovery_budget.json");
    let budget: RecoveryBudget = serde_json::from_str(&text).expect("parse recovery budget");
    let mut ok = true;
    if r.crashes < budget.min_crashes {
        eprintln!(
            "# RECOVERY BUDGET EXCEEDED: only {} crashes (floor {})",
            r.crashes, budget.min_crashes
        );
        ok = false;
    }
    if budget.require_bit_identical && !r.bit_identical {
        eprintln!("# RECOVERY BUDGET EXCEEDED: faulted digest diverged from fault-free twin");
        ok = false;
    }
    if r.invariant_violations as u64 > budget.max_invariant_violations {
        eprintln!(
            "# RECOVERY BUDGET EXCEEDED: {} invariant violations (ceiling {})",
            r.invariant_violations, budget.max_invariant_violations
        );
        ok = false;
    }
    if r.journal_replay_records_per_sec < budget.min_replay_records_per_sec {
        eprintln!(
            "# RECOVERY BUDGET EXCEEDED: journal replay at {:.0} records/s (floor {:.0})",
            r.journal_replay_records_per_sec, budget.min_replay_records_per_sec
        );
        ok = false;
    }
    if ok {
        eprintln!(
            "# recovery budget ok: {} crashes, bit_identical={}, replay {:.0} records/s",
            r.crashes, r.bit_identical, r.journal_replay_records_per_sec
        );
    }
    ok
}

#[derive(Serialize)]
struct PipelineReport {
    quick: bool,
    host_cores: usize,
    /// `--threads N` cap used for the thread sweeps instead of
    /// `host_cores` (`null` when the host clamp applied).
    threads_override: Option<usize>,
    geometry: GeometryTiming,
    kernels: KernelsReport,
    adsb_decode: DecodeTiming,
    preamble_scan: CorrTiming,
    fir: Vec<FirTiming>,
    survey: ThreadSweep,
    tv_sweep: ThreadSweep,
    calibrator: ThreadSweep,
    allocations: Vec<AllocComparison>,
    stage_latency: Vec<StageLatency>,
    span_summary: Vec<aircal_obs::SpanSummary>,
    robustness: RobustnessReport,
    scale: Vec<ScaleTiming>,
    recovery: RecoverySection,
}

/// The same f < n/2 fleet the byzantine integration suite pins down: six
/// honest installations and one node per adversary kind, audited for
/// eight rounds with a fresh commission seed each round. Fully seeded,
/// so the outcome table is a regression surface, not a flaky benchmark.
/// `(node name, installation, Some((kind tag, adversary)))` campaign row.
type CampaignRow = (&'static str, ScenarioKind, Option<(&'static str, AdversaryKind)>);

fn robustness_campaign() -> RobustnessReport {
    const ROUNDS: u64 = 8;
    let fleet: [CampaignRow; 11] = [
        ("adv-frozen", ScenarioKind::Rooftop, Some(("frozen", AdversaryKind::FrozenFrontend))),
        ("adv-gain", ScenarioKind::OpenField, Some(("gain", AdversaryKind::GainInflate { db: 25.0 }))),
        (
            "adv-poison",
            ScenarioKind::OpenField,
            Some(("poison", AdversaryKind::CalibrationPoison { db_per_round: 2.5 })),
        ),
        ("adv-replay", ScenarioKind::Rooftop, Some(("replay", AdversaryKind::ReplayStale))),
        ("adv-spoof", ScenarioKind::OpenField, Some(("spoof", AdversaryKind::SpoofAdsb { ghosts: 24 }))),
        ("h-canyon", ScenarioKind::UrbanCanyon, None),
        ("h-field-a", ScenarioKind::OpenField, None),
        ("h-field-b", ScenarioKind::OpenField, None),
        ("h-roof-a", ScenarioKind::Rooftop, None),
        ("h-roof-b", ScenarioKind::Rooftop, None),
        ("h-window", ScenarioKind::BehindWindow, None),
    ];
    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        4242,
    ));
    let mut cloud = Cloud::new(sky.clone());
    cloud.retry_policy = RetryPolicy::quick();
    for (i, (name, kind, adv)) in fleet.iter().enumerate() {
        let scenario = Scenario::build(*kind);
        let mut agent = match adv {
            Some((_, kind)) => {
                NodeAgent::with_adversary(scenario, sky.clone(), *kind, 0xBAD5_EED0 + i as u64)
            }
            None => NodeAgent::new(scenario, NodeBehavior::Honest, sky.clone()),
        };
        agent.claims.name = name.to_string();
        cloud
            .register(spawn_node(agent, 0.0, 7000 + i as u64))
            .expect("campaign registration");
    }

    let mut first_anomaly: Vec<Option<u64>> = vec![None; fleet.len()];
    let mut evicted_at: Vec<Option<u64>> = vec![None; fleet.len()];
    let mut false_quarantined: Vec<bool> = vec![false; fleet.len()];
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        // Fresh commission seed per round: replayed or frozen reports
        // only become evidence under a seed the node has not seen.
        cloud.audit_all(2000 + round);
        let health = cloud.health_report();
        let anomalies = cloud.anomaly_report();
        for (i, (name, _, adv)) in fleet.iter().enumerate() {
            let h = health
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, h, _)| *h)
                .expect("registered node reports health");
            let run = anomalies
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, run, _)| *run)
                .unwrap_or(0);
            if run > 0 && first_anomaly[i].is_none() {
                first_anomaly[i] = Some(round);
            }
            if matches!(h, NodeHealth::Evicted) && evicted_at[i].is_none() {
                evicted_at[i] = Some(round);
            }
            if adv.is_none() && matches!(h, NodeHealth::Quarantined | NodeHealth::Evicted) {
                false_quarantined[i] = true;
            }
        }
    }
    let campaign_seconds = t0.elapsed().as_secs_f64();
    cloud.shutdown();

    let adversaries: Vec<AdversaryOutcome> = fleet
        .iter()
        .enumerate()
        .filter_map(|(i, (name, _, adv))| {
            adv.map(|(kind, _)| AdversaryOutcome {
                kind,
                node: name,
                first_anomaly_round: first_anomaly[i],
                eviction_round: evicted_at[i],
                evicted: evicted_at[i].is_some(),
            })
        })
        .collect();
    let honest_nodes = fleet.iter().filter(|(_, _, adv)| adv.is_none()).count();
    let adversary_nodes = adversaries.len();
    let detection_rate =
        adversaries.iter().filter(|a| a.evicted).count() as f64 / adversary_nodes.max(1) as f64;
    let false_quarantine_count = false_quarantined.iter().filter(|&&q| q).count();
    let max_detection_latency_rounds = adversaries
        .iter()
        .map(|a| a.eviction_round.map_or(ROUNDS + 1, |r| r + 1))
        .max()
        .unwrap_or(0);
    RobustnessReport {
        rounds: ROUNDS,
        honest_nodes,
        adversary_nodes,
        adversaries,
        detection_rate,
        false_quarantine_count,
        false_quarantine_rate: false_quarantine_count as f64 / honest_nodes.max(1) as f64,
        max_detection_latency_rounds,
        campaign_seconds,
    }
}

/// Enforce `scripts/robustness_budget.json`: every adversary must be
/// evicted within the latency ceiling and no honest node quarantined.
fn check_robust_budget(r: &RobustnessReport) -> bool {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts/robustness_budget.json");
    let text = std::fs::read_to_string(path).expect("read scripts/robustness_budget.json");
    let budget: RobustBudget = serde_json::from_str(&text).expect("parse robustness budget");
    let mut ok = true;
    if r.detection_rate < budget.min_detection_rate {
        eprintln!(
            "# ROBUSTNESS BUDGET EXCEEDED: detection_rate at {:.2} (floor {:.2})",
            r.detection_rate, budget.min_detection_rate
        );
        ok = false;
    } else {
        eprintln!(
            "# robustness budget ok: detection_rate at {:.2} (floor {:.2})",
            r.detection_rate, budget.min_detection_rate
        );
    }
    if r.false_quarantine_rate > budget.max_false_quarantine_rate {
        eprintln!(
            "# ROBUSTNESS BUDGET EXCEEDED: false_quarantine_rate at {:.2} (ceiling {:.2})",
            r.false_quarantine_rate, budget.max_false_quarantine_rate
        );
        ok = false;
    } else {
        eprintln!(
            "# robustness budget ok: false_quarantine_rate at {:.2} (ceiling {:.2})",
            r.false_quarantine_rate, budget.max_false_quarantine_rate
        );
    }
    if r.max_detection_latency_rounds > budget.max_detection_latency_rounds {
        eprintln!(
            "# ROBUSTNESS BUDGET EXCEEDED: max_detection_latency_rounds at {} (ceiling {})",
            r.max_detection_latency_rounds, budget.max_detection_latency_rounds
        );
        ok = false;
    } else {
        eprintln!(
            "# robustness budget ok: max_detection_latency_rounds at {} (ceiling {})",
            r.max_detection_latency_rounds, budget.max_detection_latency_rounds
        );
    }
    ok
}

/// One fully observed calibration run: stage timers feed fixed-bucket
/// histograms, the global tracer records kernel spans. Runs after all
/// timed sections so tracing overhead cannot touch their numbers.
fn traced_calibration(quick: bool, s: &Scenario, seed: u64) -> (Vec<StageLatency>, Vec<aircal_obs::SpanSummary>) {
    let obs = aircal_obs::Obs::recording();
    aircal_obs::trace::enable();
    let cal = if quick { Calibrator::quick() } else { Calibrator::default() }
        .with_obs(obs.clone());
    std::hint::black_box(cal.calibrate(&s.world, &s.site, seed));
    aircal_obs::trace::disable();
    let spans = aircal_obs::trace::drain();
    let stage_latency = obs
        .snapshot()
        .histograms
        .into_iter()
        .map(|(stage, histogram)| StageLatency { stage, histogram })
        .collect();
    (stage_latency, aircal_obs::trace::summarize(&spans))
}

/// Time one kernel on both arms. The closures return a bit checksum of
/// the kernel's result so the optimizer cannot elide the call and the
/// two arms can be cross-checked.
fn bench_kernel(
    reps: usize,
    inner: usize,
    elements: usize,
    kernel: &'static str,
    mut scalar_call: impl FnMut() -> u64,
    mut dispatched_call: impl FnMut() -> u64,
) -> KernelTiming {
    let bit_identical = scalar_call() == dispatched_call();
    let scalar_seconds = time_best(reps, || {
        let mut acc = 0u64;
        for _ in 0..inner {
            acc ^= scalar_call();
        }
        acc
    });
    let dispatched_seconds = time_best(reps, || {
        let mut acc = 0u64;
        for _ in 0..inner {
            acc ^= dispatched_call();
        }
        acc
    });
    let work = (elements * inner) as f64;
    KernelTiming {
        kernel,
        elements,
        scalar_msamples_per_s: work / scalar_seconds / 1e6,
        dispatched_msamples_per_s: work / dispatched_seconds / 1e6,
        speedup: scalar_seconds / dispatched_seconds,
        bit_identical,
    }
}

/// Throughput of the deterministic-lane kernels on an L1-resident 4096-
/// element workload, scalar arm vs the runtime-detected arm. Both arms
/// share the canonical 8-lane reduction order, so the dispatched column
/// is the same math issued wider — any checksum divergence is a bug.
fn kernel_timings(reps: usize) -> KernelsReport {
    use aircal_dsp::simd::Kernels;
    const N: usize = 4096;
    let xs: Vec<f64> = (0..N).map(|i| (0.73 * i as f64).sin()).collect();
    let za: Vec<Cplx> = (0..N).map(|i| Cplx::phasor(0.37 * i as f64)).collect();
    let zb: Vec<Cplx> = (0..N).map(|i| Cplx::phasor(0.11 * i as f64 + 0.5)).collect();
    let taps: Vec<f64> = (0..N).map(|i| 0.5 - 0.5 * (0.002 * i as f64).cos()).collect();
    let scalar = Kernels::scalar();
    // The env-aware dispatch table, so the dispatched column always
    // describes the arm this process actually runs (an
    // `AIRCAL_FORCE_SCALAR=1` run reports scalar-vs-scalar, ~1.0x).
    let detected = aircal_dsp::kernels();
    let inner = 1000;
    let cplx_bits = |z: Cplx| z.re.to_bits() ^ z.im.to_bits().rotate_left(1);

    let mut kernels = vec![
        bench_kernel(
            reps,
            inner,
            N,
            "sum_f64",
            || (scalar.sum_f64)(&xs).to_bits(),
            || (detected.sum_f64)(&xs).to_bits(),
        ),
        bench_kernel(
            reps,
            inner,
            N,
            "energy",
            || (scalar.energy)(&za).to_bits(),
            || (detected.energy)(&za).to_bits(),
        ),
        bench_kernel(
            reps,
            inner,
            N,
            "cdot",
            || cplx_bits((scalar.cdot)(&za, &zb)),
            || cplx_bits((detected.cdot)(&za, &zb)),
        ),
        bench_kernel(
            reps,
            inner,
            N,
            "cdot_conj",
            || cplx_bits((scalar.cdot_conj)(&za, &zb)),
            || cplx_bits((detected.cdot_conj)(&za, &zb)),
        ),
    ];
    let mut mags_s = vec![0.0f64; N];
    let mut mags_d = vec![0.0f64; N];
    kernels.push(bench_kernel(
        reps,
        inner,
        N,
        "norm_sq_map",
        || {
            (scalar.norm_sq_map)(&za, &mut mags_s);
            mags_s[0].to_bits() ^ mags_s[N - 1].to_bits().rotate_left(1)
        },
        || {
            (detected.norm_sq_map)(&za, &mut mags_d);
            mags_d[0].to_bits() ^ mags_d[N - 1].to_bits().rotate_left(1)
        },
    ));
    let mut win_s = vec![Cplx::ZERO; N];
    let mut win_d = vec![Cplx::ZERO; N];
    kernels.push(bench_kernel(
        reps,
        inner,
        N,
        "scale_map",
        || {
            (scalar.scale_map)(&za, &taps, &mut win_s);
            cplx_bits(win_s[0]) ^ cplx_bits(win_s[N - 1]).rotate_left(7)
        },
        || {
            (detected.scale_map)(&za, &taps, &mut win_d);
            cplx_bits(win_d[0]) ^ cplx_bits(win_d[N - 1]).rotate_left(7)
        },
    ));
    KernelsReport {
        dispatch: aircal_dsp::dispatch_label(),
        kernels,
    }
}

/// Best-of-`reps` wall clock, seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Time `run` at 1/2/4/8 worker threads, skipping counts beyond `cap` —
/// an oversubscribed row measures scheduler noise, not scaling. The cap
/// defaults to the host's core count; `--threads N` raises (or lowers)
/// it explicitly. The serial row always survives the clamp, and the
/// skipped counts are recorded so a one-row table on a one-core host
/// reads as a clamp, not as missing data.
fn thread_sweep(
    reps: usize,
    host_cores: usize,
    cap: usize,
    mut run: impl FnMut(usize),
) -> ThreadSweep {
    let mut rows: Vec<ThreadTiming> = Vec::new();
    let mut skipped_threads: Vec<usize> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        if threads > cap.max(1) {
            skipped_threads.push(threads);
            continue;
        }
        let seconds = time_best(reps, || run(threads));
        let serial = rows.first().map(|t| t.seconds).unwrap_or(seconds);
        rows.push(ThreadTiming {
            threads,
            seconds,
            speedup_vs_serial: serial / seconds,
        });
    }
    ThreadSweep {
        clamped: !skipped_threads.is_empty(),
        thread_cap: cap.max(1),
        host_cores,
        skipped_threads,
        rows,
    }
}

/// Run `f` once to warm pools/plans, then `rounds` more times with the
/// allocator counters bracketed around them.
fn measure_allocs(bursts_per_round: usize, rounds: usize, mut f: impl FnMut()) -> AllocStats {
    f();
    let before = AllocSnapshot::now();
    for _ in 0..rounds.max(1) {
        f();
    }
    let delta = AllocSnapshot::now() - before;
    let bursts = bursts_per_round * rounds.max(1);
    AllocStats {
        bursts,
        allocs_per_burst: delta.allocs as f64 / bursts.max(1) as f64,
        bytes_per_burst: delta.bytes as f64 / bursts.max(1) as f64,
    }
}

fn alloc_reduction(allocating: &AllocStats, scratch: &AllocStats) -> f64 {
    if scratch.allocs_per_burst == 0.0 {
        allocating.allocs_per_burst
    } else {
        allocating.allocs_per_burst / scratch.allocs_per_burst
    }
}

/// Steady-state ADS-B burst loop: render one cluster, scan it, recycle
/// the window buffer. The allocating baseline uses the pre-scratch entry
/// points (`render_seeded` + `scan`); the scratch path must hit zero.
fn survey_burst_allocs(seed: u64) -> AllocComparison {
    let fe = Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6));
    let renderer = CaptureRenderer::new(fe.clone());
    let floor = fe.noise_floor_dbm();
    let plans: Vec<BurstPlan> = (0..32)
        .map(|i| {
            let frame = AdsbFrame::new(
                IcaoAddress::new(0xA00000 + (i as u32 % 16)),
                MePayload::AirbornePosition {
                    altitude_ft: 30_000.0,
                    cpr: cpr::encode(37.9, -122.2, cpr::CprFormat::Even),
                },
            );
            BurstPlan {
                start_s: i as f64 * 2e-3,
                waveform: aircal_adsb::ppm::modulate(&frame.encode(), 1.0, 0.0),
                rx_power_dbm: floor + 8.0 + (i % 10) as f64,
                phase0: i as f64 * 0.37,
            }
        })
        .collect();
    let clusters = renderer.cluster_plans(&plans);
    let decoder = Decoder::default();

    let allocating = measure_allocs(clusters.len(), 4, || {
        let windows = renderer.render_seeded(&plans, seed, 1);
        let msgs: usize = windows
            .iter()
            .map(|w| decoder.scan(&w.samples, w.start_s).len())
            .sum();
        std::hint::black_box(msgs);
    });

    let mut scratch = DspScratch::new();
    let mut dscratch = DecodeScratch::default();
    let mut msgs = Vec::new();
    let scratch_stats = measure_allocs(clusters.len(), 4, || {
        let mut total = 0usize;
        for (ci, cluster) in clusters.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed, ci as u64));
            let w = renderer.render_cluster_with(&plans, cluster, &mut rng, &mut scratch);
            decoder.scan_with(&w.samples, w.start_s, &mut dscratch, &mut msgs);
            total += msgs.len();
            w.recycle(&mut scratch);
        }
        std::hint::black_box(total);
    });

    AllocComparison {
        path: "survey_burst",
        reduction: alloc_reduction(&allocating, &scratch_stats),
        allocating,
        scratch: scratch_stats,
    }
}

/// Steady-state TV channel loop: the allocating baseline re-synthesizes
/// the 8VSB reference and rebuilds the band-power meter per channel; the
/// scratch path shares one waveform and resets one warm meter. The result
/// `station: String` keeps the scratch path at ~1 alloc per channel.
fn tv_channel_allocs(seed: u64) -> AllocComparison {
    let s = Scenario::build(ScenarioKind::Rooftop);
    let towers = paper_tv_towers(&s.world.origin);
    let probe = TvPowerProbe::new(TvProbeConfig {
        parallelism: 1,
        ..TvProbeConfig::default()
    });

    let allocating = measure_allocs(towers.len(), 2, || {
        let acc: f64 = towers
            .iter()
            .map(|t| probe.measure(&s.world, &s.site, t, seed).power_dbfs)
            .sum();
        std::hint::black_box(acc);
    });

    let waveform = probe.reference_waveform();
    let mut scratch = TvScratch::default();
    let scratch_stats = measure_allocs(towers.len(), 2, || {
        let acc: f64 = towers
            .iter()
            .map(|t| {
                probe
                    .measure_with(&s.world, &s.site, t, seed, &waveform, &mut scratch)
                    .power_dbfs
            })
            .sum();
        std::hint::black_box(acc);
    });

    AllocComparison {
        path: "tv_channel",
        reduction: alloc_reduction(&allocating, &scratch_stats),
        allocating,
        scratch: scratch_stats,
    }
}

/// Steady-state cellular sweep: `scan_with` rewrites warm measurement
/// slots (name strings included) through a warm geometry accelerator,
/// so the steady state performs zero allocations per tower.
fn cellular_tower_allocs(seed: u64) -> AllocComparison {
    let s = Scenario::build(ScenarioKind::Rooftop);
    let db = paper_towers(&s.world.origin);
    let scanner = CellScanner::default();
    let n = db.all().len();

    let allocating = measure_allocs(n, 8, || {
        std::hint::black_box(scanner.scan(&s.world, &s.site, &db, seed).len());
    });

    let mut accel = s.world.accel();
    let mut scratch = CellScratch::default();
    let mut out = Vec::new();
    let scratch_stats = measure_allocs(n, 8, || {
        scanner.scan_with(&s.world, &mut accel, &s.site, &db, seed, &mut scratch, &mut out);
        std::hint::black_box(out.len());
    });

    AllocComparison {
        path: "cellular_tower",
        reduction: alloc_reduction(&allocating, &scratch_stats),
        allocating,
        scratch: scratch_stats,
    }
}

/// Time one dense-world obstruction sweep three ways: brute force over
/// every building, through the spatial index, and through index + path
/// memo (warmed, so the timed passes are pure lookups). The three output
/// vectors are compared bit for bit.
fn geometry_timings(quick: bool, reps: usize) -> GeometryTiming {
    let dense = dense_city(if quick { 10 } else { 16 });
    let rays = if quick { 120 } else { 240 };
    let (freq, elev, range) = (1.09e9, 2.0, 50_000.0);

    let t0 = Instant::now();
    let index = dense.world.index();
    let index_build_seconds = t0.elapsed().as_secs_f64();

    let brute = dense
        .world
        .obstruction_profile(&dense.site, freq, elev, range, rays);
    let brute_seconds = time_best(reps, || {
        dense
            .world
            .obstruction_profile(&dense.site, freq, elev, range, rays)
            .len()
    });

    let mut scratch = GeoScratch::new();
    let mut out = Vec::new();
    let indexed_seconds = time_best(reps, || {
        dense.world.obstruction_profile_with(
            &index, None, &dense.site, freq, elev, range, rays, &mut scratch, &mut out,
        );
        out.len()
    });
    let indexed = out.clone();

    let mut cache = PathCache::new();
    dense.world.obstruction_profile_with(
        &index,
        Some(&mut cache),
        &dense.site,
        freq,
        elev,
        range,
        rays,
        &mut scratch,
        &mut out,
    );
    let _ = cache.take_delta(); // warm pass: don't let its misses dilute the rate
    let cached_seconds = time_best(reps, || {
        dense.world.obstruction_profile_with(
            &index,
            Some(&mut cache),
            &dense.site,
            freq,
            elev,
            range,
            rays,
            &mut scratch,
            &mut out,
        );
        out.len()
    });
    let cached = out.clone();
    let (hits, misses) = cache.take_delta();

    let same_bits = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    GeometryTiming {
        buildings: dense.world.buildings.len(),
        rays,
        index_build_seconds,
        brute_seconds,
        indexed_seconds,
        cached_seconds,
        indexed_speedup: brute_seconds / indexed_seconds,
        cached_speedup: brute_seconds / cached_seconds,
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        bit_identical: same_bits(&brute, &indexed) && same_bits(&brute, &cached),
    }
}

/// Enforce `scripts/perf_budget.json`: the geometry accelerators must
/// keep their speedup/hit-rate floors and stay bit-identical to brute
/// force, and — when a vector ISA is dispatched — enough DSP kernels
/// must clear the simd-vs-scalar speedup floor.
fn check_perf_budget(g: &GeometryTiming, k: &KernelsReport) -> bool {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts/perf_budget.json");
    let text = std::fs::read_to_string(path).expect("read scripts/perf_budget.json");
    let budget: PerfBudget = serde_json::from_str(&text).expect("parse perf budget");
    let mut ok = true;
    let mut gate = |name: &str, value: f64, floor: f64| {
        if value < floor {
            eprintln!("# PERF BUDGET EXCEEDED: {name} at {value:.2} (floor {floor:.2})");
            ok = false;
        } else {
            eprintln!("# perf budget ok: {name} at {value:.2} (floor {floor:.2})");
        }
    };
    gate("geometry.indexed_speedup", g.indexed_speedup, budget.min_indexed_speedup);
    gate("geometry.cached_speedup", g.cached_speedup, budget.min_cached_speedup);
    gate("geometry.cache_hit_rate", g.cache_hit_rate, budget.min_cache_hit_rate);
    if budget.require_bit_identical && !g.bit_identical {
        eprintln!("# PERF BUDGET EXCEEDED: geometry outputs not bit-identical to brute force");
        ok = false;
    }
    if budget.require_bit_identical {
        for t in &k.kernels {
            if !t.bit_identical {
                eprintln!(
                    "# PERF BUDGET EXCEEDED: kernel {} diverged from the scalar arm",
                    t.kernel
                );
                ok = false;
            }
        }
    }
    if k.dispatch == "scalar" {
        eprintln!(
            "# perf budget note: dispatch is scalar (no vector ISA or AIRCAL_FORCE_SCALAR); \
             kernel speedup floor not applicable"
        );
    } else {
        let fast = k
            .kernels
            .iter()
            .filter(|t| t.bit_identical && t.speedup >= budget.min_kernel_speedup)
            .count();
        if fast < budget.min_kernels_at_speedup {
            eprintln!(
                "# PERF BUDGET EXCEEDED: only {fast} kernels at >= {:.2}x on {} (need {})",
                budget.min_kernel_speedup, k.dispatch, budget.min_kernels_at_speedup
            );
            ok = false;
        } else {
            eprintln!(
                "# perf budget ok: {fast} kernels at >= {:.2}x on {} (need {})",
                budget.min_kernel_speedup, k.dispatch, budget.min_kernels_at_speedup
            );
        }
    }
    ok
}

/// Enforce `scripts/alloc_budget.json`: every scratch path must stay at
/// or under its checked-in allocs-per-burst ceiling.
fn check_alloc_budget(allocations: &[AllocComparison]) -> bool {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts/alloc_budget.json");
    let text = std::fs::read_to_string(path).expect("read scripts/alloc_budget.json");
    let budget: AllocBudget = serde_json::from_str(&text).expect("parse alloc budget");
    let mut ok = true;
    for a in allocations {
        let limit = match a.path {
            "survey_burst" => budget.survey_burst,
            "tv_channel" => budget.tv_channel,
            "cellular_tower" => budget.cellular_tower,
            other => panic!("no budget entry for path {other}"),
        };
        if a.scratch.allocs_per_burst > limit {
            eprintln!(
                "# ALLOC BUDGET EXCEEDED: {} at {:.2} allocs/burst (budget {:.2})",
                a.path, a.scratch.allocs_per_burst, limit
            );
            ok = false;
        } else {
            eprintln!(
                "# alloc budget ok: {} at {:.2} allocs/burst (budget {:.2})",
                a.path, a.scratch.allocs_per_burst, limit
            );
        }
    }
    ok
}

fn decode_capture(seed: u64, frames: usize) -> (Vec<aircal_sdr::RenderedWindow>, usize) {
    let fe = Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6));
    let renderer = CaptureRenderer::new(fe.clone());
    let floor = fe.noise_floor_dbm();
    let plans: Vec<BurstPlan> = (0..frames)
        .map(|i| {
            let frame = AdsbFrame::new(
                IcaoAddress::new(0xA00000 + (i as u32 % 64)),
                MePayload::AirbornePosition {
                    altitude_ft: 30_000.0,
                    cpr: cpr::encode(37.9, -122.2, cpr::CprFormat::Even),
                },
            );
            BurstPlan {
                start_s: i as f64 * 2e-3,
                waveform: aircal_adsb::ppm::modulate(&frame.encode(), 1.0, 0.0),
                rx_power_dbm: floor + 6.0 + (i % 12) as f64,
                phase0: i as f64 * 0.37,
            }
        })
        .collect();
    let windows = renderer.render_seeded(&plans, seed, 0);
    let samples = windows.iter().map(|w| w.samples.len()).sum();
    (windows, samples)
}

fn main() {
    let (positional, seed) = parse_args();
    let quick = positional.iter().any(|a| a == "--quick");
    let check_allocs = positional.iter().any(|a| a == "--check-allocs");
    let check_perf = positional.iter().any(|a| a == "--check-perf");
    let check_robust = positional.iter().any(|a| a == "--check-robust");
    let check_scale = positional.iter().any(|a| a == "--check-scale");
    let check_recovery = positional.iter().any(|a| a == "--check-recovery");
    let mut threads_override: Option<usize> = None;
    let mut args_it = positional.iter();
    while let Some(a) = args_it.next() {
        if a == "--threads" {
            threads_override = args_it.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads_override = v.parse().ok();
        }
    }
    let reps = if quick { 1 } else { 3 };
    let host_cores = aircal_dsp::resolve_parallelism(0);
    let thread_cap = threads_override.unwrap_or(host_cores).max(1);
    eprintln!(
        "# perfreport: quick={quick} seed={seed} host_cores={host_cores} thread_cap={thread_cap}"
    );

    // --- DSP kernel dispatch (scalar vs vector arm) -----------------------
    let kernels = kernel_timings(reps);
    eprintln!("# kernels: dispatch={}", kernels.dispatch);
    for t in &kernels.kernels {
        eprintln!(
            "# kernel {}: {:.0} -> {:.0} Msamples/s ({:.2}x, bits {})",
            t.kernel,
            t.scalar_msamples_per_s,
            t.dispatched_msamples_per_s,
            t.speedup,
            if t.bit_identical { "identical" } else { "DIVERGED" }
        );
    }

    // --- ADS-B decode throughput -----------------------------------------
    let (windows, samples) = decode_capture(seed, if quick { 200 } else { 1_000 });
    let decoder = Decoder::default();
    let messages: usize = windows
        .iter()
        .map(|w| decoder.scan(&w.samples, w.start_s).len())
        .sum();
    let seconds = time_best(reps, || {
        windows
            .iter()
            .map(|w| decoder.scan(&w.samples, w.start_s).len())
            .sum::<usize>()
    });
    let adsb_decode = DecodeTiming {
        samples,
        messages,
        seconds,
        msamples_per_s: samples as f64 / seconds / 1e6,
    };
    eprintln!(
        "# adsb_decode: {:.1} Msamples/s ({} msgs from {} samples)",
        adsb_decode.msamples_per_s, messages, samples
    );

    // --- Gated vs ungated preamble scan ----------------------------------
    let flat: Vec<Cplx> = windows.iter().flat_map(|w| w.samples.iter().copied()).collect();
    let threshold = aircal_adsb::DecoderConfig::default().preamble_threshold;
    let template = aircal_adsb::ppm::preamble_template();
    let ungated_seconds = time_best(reps, || {
        let corr = normalized_correlation(&flat, &template);
        find_peaks(&corr, threshold, 64).len()
    });
    let gated_seconds = time_best(reps, || {
        let corr = gated_preamble_correlation(&flat, threshold);
        find_peaks(&corr, threshold, 64).len()
    });
    let preamble_scan = CorrTiming {
        samples: flat.len(),
        ungated_seconds,
        gated_seconds,
        speedup: ungated_seconds / gated_seconds,
    };
    eprintln!("# preamble_scan: gate speedup {:.2}x", preamble_scan.speedup);

    // --- Overlap-save FIR vs direct --------------------------------------
    let input_len = if quick { 40_000 } else { 200_000 };
    let x: Vec<Cplx> = (0..input_len).map(|i| Cplx::phasor(0.123 * i as f64)).collect();
    let mut fir = Vec::new();
    for taps in [63usize, 255, 1023] {
        let h = design_bandpass(0.05, 0.25, taps, Window::Blackman).unwrap();
        let direct = FirFilter::new(h.clone()).unwrap();
        let fast = FastFirFilter::new(h).unwrap();
        let direct_seconds = time_best(reps, || {
            let mut f = direct.clone();
            f.process(&x)
        });
        let overlap_save_seconds = time_best(reps, || {
            let mut f = fast.clone();
            f.process(&x)
        });
        let t = FirTiming {
            taps,
            input_len,
            direct_seconds,
            overlap_save_seconds,
            speedup: direct_seconds / overlap_save_seconds,
        };
        eprintln!("# fir {taps} taps: overlap-save {:.2}x vs direct", t.speedup);
        fir.push(t);
    }

    // --- Survey wall-clock vs threads ------------------------------------
    let s = Scenario::build(ScenarioKind::Rooftop);
    let traffic = paper_traffic(&s, seed);
    let survey_cfg = if quick { SurveyConfig::quick() } else { SurveyConfig::default() };
    let survey = thread_sweep(reps, host_cores, thread_cap, |threads| {
        let cfg = SurveyConfig {
            parallelism: threads,
            ..survey_cfg
        };
        std::hint::black_box(run_survey(&s.world, &s.site, &traffic, &cfg, seed));
    });
    let widest = survey.rows.last().expect("sweep includes serial row");
    eprintln!(
        "# survey: {:.3}s serial, {:.2}x at {} threads{}",
        survey.rows[0].seconds,
        widest.speedup_vs_serial,
        widest.threads,
        if survey.clamped { " (clamped)" } else { "" }
    );

    // --- TV sweep vs threads ---------------------------------------------
    let towers = paper_tv_towers(&s.world.origin);
    let tv_sweep = thread_sweep(reps, host_cores, thread_cap, |threads| {
        let probe = TvPowerProbe::new(TvProbeConfig {
            parallelism: threads,
            ..TvProbeConfig::default()
        });
        std::hint::black_box(probe.sweep(&s.world, &s.site, &towers, seed));
    });
    eprintln!("# tv_sweep: {:.3}s serial", tv_sweep.rows[0].seconds);

    // --- Full calibrator vs threads --------------------------------------
    let calibrator = thread_sweep(if quick { 1 } else { 2 }, host_cores, thread_cap, |threads| {
        let cal = if quick { Calibrator::quick() } else { Calibrator::default() }
            .with_parallelism(threads);
        std::hint::black_box(cal.calibrate(&s.world, &s.site, seed));
    });
    eprintln!("# calibrator: {:.3}s serial", calibrator.rows[0].seconds);

    // --- Geometry acceleration (dense world) -----------------------------
    let geometry = geometry_timings(quick, reps);
    eprintln!(
        "# geometry: {} buildings, index {:.2}x, index+memo {:.2}x, hit rate {:.2}, bits {}",
        geometry.buildings,
        geometry.indexed_speedup,
        geometry.cached_speedup,
        geometry.cache_hit_rate,
        if geometry.bit_identical { "identical" } else { "DIVERGED" }
    );

    // --- Steady-state allocation accounting -------------------------------
    // Runs before the traced calibration so span recording (which does
    // allocate) cannot leak into the per-burst counts.
    let allocations = vec![
        survey_burst_allocs(seed),
        tv_channel_allocs(seed),
        cellular_tower_allocs(seed),
    ];
    for a in &allocations {
        eprintln!(
            "# allocs {}: {:.2}/burst allocating vs {:.2}/burst scratch ({:.0}x)",
            a.path, a.allocating.allocs_per_burst, a.scratch.allocs_per_burst, a.reduction
        );
    }

    // --- Per-stage latency histograms (traced run) ------------------------
    let (stage_latency, span_summary) = traced_calibration(quick, &s, seed);
    eprintln!(
        "# stage_latency: {} stages, {} distinct spans",
        stage_latency.len(),
        span_summary.len()
    );

    // --- Adversarial audit campaign ---------------------------------------
    let robustness = robustness_campaign();
    eprintln!(
        "# robustness: {}/{} adversaries evicted, {} false quarantines, worst latency {} rounds, {:.1}s",
        robustness.adversaries.iter().filter(|a| a.evicted).count(),
        robustness.adversary_nodes,
        robustness.false_quarantine_count,
        robustness.max_detection_latency_rounds,
        robustness.campaign_seconds
    );

    // --- Campaign engine at fleet scale -----------------------------------
    let scale = scale_campaigns(seed);
    for s in &scale {
        eprintln!(
            "# scale {} nodes: {} events in {:.3}s ({:.0} events/s), parallel digest {}",
            s.nodes,
            s.events,
            s.seconds,
            s.events_per_sec,
            if s.parallel_digest_matches { "matches" } else { "DIVERGED" }
        );
    }

    // --- Crash recovery drill ---------------------------------------------
    let recovery = recovery_drill(seed, reps);
    eprintln!(
        "# recovery: {} crashes over {} nodes, {} replayed records, bit_identical={}, replay {:.0} records/s",
        recovery.crashes,
        recovery.nodes,
        recovery.replayed_records,
        recovery.bit_identical,
        recovery.journal_replay_records_per_sec
    );

    let report = PipelineReport {
        quick,
        host_cores,
        threads_override,
        geometry,
        kernels,
        adsb_decode,
        preamble_scan,
        fir,
        survey,
        tv_sweep,
        calibrator,
        allocations,
        stage_latency,
        span_summary,
        robustness,
        scale,
        recovery,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PIPELINE.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_PIPELINE.json");
    println!("wrote {path}");

    // Budget checks run last so the report is on disk (and uploadable as
    // a CI artifact) even when a gate trips.
    let mut failed = false;
    if check_allocs && !check_alloc_budget(&report.allocations) {
        failed = true;
    }
    if check_perf && !check_perf_budget(&report.geometry, &report.kernels) {
        failed = true;
    }
    if check_robust && !check_robust_budget(&report.robustness) {
        failed = true;
    }
    if check_scale && !check_scale_budget(&report.scale) {
        failed = true;
    }
    if check_recovery && !check_recovery_budget(&report.recovery) {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
