//! Counting global allocator for the allocation-budget gate.
//!
//! [`CountingAllocator`] wraps [`std::alloc::System`] and counts every
//! allocation and allocated byte with relaxed atomics. Register it as the
//! `#[global_allocator]` in a binary or integration test, then bracket the
//! region of interest with [`AllocSnapshot::now`] and subtract:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: aircal_bench::CountingAllocator = aircal_bench::CountingAllocator::new();
//!
//! let before = aircal_bench::AllocSnapshot::now();
//! hot_path();
//! let during = aircal_bench::AllocSnapshot::now() - before;
//! assert_eq!(during.allocs, 0);
//! ```
//!
//! The counters are monotonic (never reset), so concurrent threads can
//! take snapshots without coordinating; `realloc` counts as one
//! allocation of the new size, `dealloc` is not counted. This matches
//! what the budget cares about: allocator round-trips on the hot path,
//! not live-heap accounting.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper over the system allocator that counts
/// allocations and bytes. Zero-sized and `const`-constructible so it can
/// be a `static` `#[global_allocator]`.
pub struct CountingAllocator;

impl CountingAllocator {
    /// Create the allocator (for the `#[global_allocator]` static).
    pub const fn new() -> Self {
        Self
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Monotonic counter reading: allocations and bytes since process start.
/// Subtract two snapshots to get the cost of the code between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocator round-trips (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Bytes requested across those round-trips.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Read the current counters.
    pub fn now() -> Self {
        Self {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }
}

impl std::ops::Sub for AllocSnapshot {
    type Output = AllocSnapshot;

    fn sub(self, rhs: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(rhs.allocs),
            bytes: self.bytes.saturating_sub(rhs.bytes),
        }
    }
}
