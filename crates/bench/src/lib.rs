//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Every figure in the paper's evaluation has a regenerating target here:
//!
//! | Paper artifact | Binary | Bench |
//! |---|---|---|
//! | Figure 1(a–c) — ADS-B directionality | `fig1` | `fig1_survey` |
//! | Figure 2 — testbed map | `fig2map` | — |
//! | Figure 3 — cellular RSRP | `fig3` | `fig3_cellular` |
//! | Figure 4 — TV band power | `fig4` | `fig4_tv` |
//! | Ablations A1–A5 (DESIGN.md) | `ablations` | `ablation_fov`, `adsb_decode` |

use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::survey::{run_survey, SurveyConfig, SurveyResult};
use aircal_env::Scenario;

pub mod alloc_counter;
pub use alloc_counter::{AllocSnapshot, CountingAllocator};

/// Standard survey used by the figure harness: the paper's 30 s procedure
/// with 70 aircraft in the disc.
pub fn paper_survey(scenario: &Scenario, seed: u64) -> SurveyResult {
    let traffic = paper_traffic(scenario, seed);
    run_survey(
        &scenario.world,
        &scenario.site,
        &traffic,
        &SurveyConfig::default(),
        seed,
    )
}

/// The traffic generator settings shared by the harness.
pub fn paper_traffic(scenario: &Scenario, seed: u64) -> TrafficSim {
    TrafficSim::generate(
        TrafficConfig {
            count: 70,
            ..TrafficConfig::paper_default(scenario.site.position)
        },
        seed,
    )
}

/// Parse a `--seed N` style argument list: returns (positional, seed).
pub fn parse_args() -> (Vec<String>, u64) {
    let mut seed = 2023;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seed" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                seed = v;
            }
        } else {
            positional.push(a);
        }
    }
    (positional, seed)
}
