//! The allocation gate: proves the survey hot path is allocation-free in
//! steady state and that every scratch-path entry point is bit-identical
//! to its allocating wrapper.
//!
//! The binary registers [`aircal_bench::CountingAllocator`] as the global
//! allocator; each measuring test brackets its steady-state loop with
//! [`AllocSnapshot`] reads. Because the counters are process-global, all
//! tests in this file serialize on one mutex so a concurrently running
//! test can never leak allocations into another's measurement window.

use aircal_adsb::{cpr, me::MePayload, AdsbFrame, DecodeScratch, DecodedMessage, Decoder, IcaoAddress};
use aircal_bench::{AllocSnapshot, CountingAllocator};
use aircal_cellular::{paper_towers, CellScanner, CellScratch};
use aircal_dsp::psd::{welch_psd, welch_psd_into};
use aircal_dsp::window::Window;
use aircal_dsp::{derive_stream_seed, par_map_with, Cplx, DspScratch};
use aircal_env::{Scenario, ScenarioKind};
use aircal_sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig, RenderedWindow};
use aircal_tv::{paper_tv_towers, TvPowerProbe, TvProbeConfig, TvScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Serializes every test in this binary: the allocator counters are
/// process-global, so measurements must not overlap.
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const SEED: u64 = 2023;

fn renderer() -> (CaptureRenderer, Vec<BurstPlan>) {
    let fe = Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6));
    let renderer = CaptureRenderer::new(fe.clone());
    let floor = fe.noise_floor_dbm();
    let plans = (0..24)
        .map(|i| {
            let frame = AdsbFrame::new(
                IcaoAddress::new(0xA00000 + (i as u32 % 8)),
                MePayload::AirbornePosition {
                    altitude_ft: 28_000.0,
                    cpr: cpr::encode(37.9, -122.2, cpr::CprFormat::Even),
                },
            );
            BurstPlan {
                start_s: i as f64 * 2e-3,
                waveform: aircal_adsb::ppm::modulate(&frame.encode(), 1.0, 0.0),
                rx_power_dbm: floor + 8.0 + (i % 10) as f64,
                phase0: i as f64 * 0.37,
            }
        })
        .collect();
    (renderer, plans)
}

/// Tentpole assertion: after one warm-up pass, the serial render → scan →
/// recycle burst loop performs **exactly zero** heap allocations.
#[test]
fn survey_burst_loop_is_allocation_free_after_warmup() {
    let _g = lock();
    let (renderer, plans) = renderer();
    let clusters = renderer.cluster_plans(&plans);
    let decoder = Decoder::default();
    let mut scratch = DspScratch::new();
    let mut dscratch = DecodeScratch::default();
    let mut msgs: Vec<DecodedMessage> = Vec::new();

    let round = |scratch: &mut DspScratch, dscratch: &mut DecodeScratch, msgs: &mut Vec<DecodedMessage>| {
        let mut decoded = 0usize;
        for (ci, cluster) in clusters.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(SEED, ci as u64));
            let w = renderer.render_cluster_with(&plans, cluster, &mut rng, scratch);
            decoder.scan_with(&w.samples, w.start_s, dscratch, msgs);
            decoded += msgs.len();
            w.recycle(scratch);
        }
        decoded
    };

    // Warm-up: pools fill, FFT plans build, vectors reach steady capacity.
    let warm = round(&mut scratch, &mut dscratch, &mut msgs);
    assert!(warm > 0, "warm-up round must decode something");

    let before = AllocSnapshot::now();
    let decoded = round(&mut scratch, &mut dscratch, &mut msgs);
    let delta = AllocSnapshot::now() - before;
    assert_eq!(decoded, warm, "steady-state rounds decode identically");
    assert_eq!(
        delta.allocs, 0,
        "steady-state burst loop allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}

/// At parallelism 8 the only per-round allocations are the fixed costs of
/// spawning the scoped workers — the *marginal* cost per burst is zero:
/// decoding twice as many windows costs exactly the same number of
/// allocations per round.
#[test]
fn parallel_decode_marginal_allocs_per_burst_are_zero() {
    let _g = lock();
    let (renderer, plans) = renderer();
    let half: Vec<BurstPlan> = plans[..plans.len() / 2].to_vec();
    let windows_full = renderer.render_seeded(&plans, SEED, 1);
    let windows_half = renderer.render_seeded(&half, SEED, 1);
    assert!(windows_half.len() < windows_full.len());

    let decoder = Decoder::default();
    const THREADS: usize = 8;
    let mut scratches: Vec<(DecodeScratch, Vec<DecodedMessage>)> =
        (0..THREADS).map(|_| Default::default()).collect();
    let (mut slots, mut out) = (Vec::new(), Vec::new());

    let round = |windows: &[RenderedWindow],
                     scratches: &mut Vec<(DecodeScratch, Vec<DecodedMessage>)>,
                     slots: &mut Vec<Option<usize>>,
                     out: &mut Vec<usize>| {
        par_map_with(windows, THREADS, scratches, slots, out, |_, w, (ds, msgs)| {
            decoder.scan_with(&w.samples, w.start_s, ds, msgs);
            msgs.len()
        });
        out.iter().sum::<usize>()
    };

    // The atomic work queue hands windows to workers by scheduling luck,
    // so in the measured rounds *any* scratch may see *any* window. Warm
    // every worker's scratch on the full set deterministically — a cold
    // scratch growing mid-measurement would show up as a spurious,
    // timing-dependent allocation delta.
    for (ds, msgs) in scratches.iter_mut() {
        for w in &windows_full {
            decoder.scan_with(&w.samples, w.start_s, ds, msgs);
        }
    }
    // And one parallel round so slot/result staging reaches capacity.
    round(&windows_full, &mut scratches, &mut slots, &mut out);

    let before = AllocSnapshot::now();
    let full = round(&windows_full, &mut scratches, &mut slots, &mut out);
    let mid = AllocSnapshot::now();
    let half_decoded = round(&windows_half, &mut scratches, &mut slots, &mut out);
    let after = AllocSnapshot::now();

    assert!(full > half_decoded, "more windows decode more messages");
    let full_round = mid - before;
    let half_round = after - mid;
    assert_eq!(
        full_round.allocs, half_round.allocs,
        "per-round allocations must not scale with burst count \
         ({} windows: {} allocs, {} windows: {} allocs)",
        windows_full.len(),
        full_round.allocs,
        windows_half.len(),
        half_round.allocs
    );
}

/// `scan_with` must be bit-identical to the allocating `scan`.
#[test]
fn scan_with_matches_scan_bit_identically() {
    let _g = lock();
    let (renderer, plans) = renderer();
    let windows = renderer.render_seeded(&plans, SEED, 1);
    let decoder = Decoder::default();
    let mut scratch = DecodeScratch::default();
    let mut out = Vec::new();
    for w in &windows {
        let reference = decoder.scan(&w.samples, w.start_s);
        decoder.scan_with(&w.samples, w.start_s, &mut scratch, &mut out);
        assert_eq!(reference, out);
    }
}

/// The pooled render path (manual cluster loop with recycling) must be
/// bit-identical to `render_seeded` at every thread count.
#[test]
fn pooled_render_matches_render_seeded_bit_identically() {
    let _g = lock();
    let (renderer, plans) = renderer();
    let clusters = renderer.cluster_plans(&plans);
    let mut scratch = DspScratch::new();
    for _ in 0..2 {
        // Two rounds: the second runs entirely from recycled buffers.
        let mut pooled = Vec::new();
        for (ci, cluster) in clusters.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(SEED, ci as u64));
            pooled.push(renderer.render_cluster_with(&plans, cluster, &mut rng, &mut scratch));
        }
        for threads in [1usize, 8] {
            let reference = renderer.render_seeded(&plans, SEED, threads);
            assert_eq!(reference.len(), pooled.len());
            for (a, b) in reference.iter().zip(&pooled) {
                assert_eq!(a.start_s, b.start_s);
                assert_eq!(a.samples, b.samples);
            }
        }
        for w in pooled {
            w.recycle(&mut scratch);
        }
    }
}

/// TV: a warm reused scratch (shared waveform, reset meter) must measure
/// every channel bit-identically to the allocating `measure`.
#[test]
fn tv_measure_with_matches_measure_bit_identically() {
    let _g = lock();
    let s = Scenario::build(ScenarioKind::Rooftop);
    let towers = paper_tv_towers(&s.world.origin);
    let probe = TvPowerProbe::new(TvProbeConfig {
        parallelism: 1,
        ..TvProbeConfig::default()
    });
    let waveform = probe.reference_waveform();
    let mut scratch = TvScratch::default();
    for _ in 0..2 {
        // Second pass reuses the warm meter via reset(): still identical.
        for t in &towers {
            let reference = probe.measure(&s.world, &s.site, t, SEED);
            let pooled = probe.measure_with(&s.world, &s.site, t, SEED, &waveform, &mut scratch);
            assert_eq!(reference, pooled);
        }
    }
}

/// Cellular: `scan_into` into a reused buffer matches `scan` exactly.
#[test]
fn cellular_scan_into_matches_scan_bit_identically() {
    let _g = lock();
    let s = Scenario::build(ScenarioKind::Rooftop);
    let db = paper_towers(&s.world.origin);
    let scanner = CellScanner::default();
    let mut out = Vec::new();
    for seed in [1u64, SEED] {
        let reference = scanner.scan(&s.world, &s.site, &db, seed);
        scanner.scan_into(&s.world, &s.site, &db, seed, &mut out);
        assert_eq!(reference, out);
    }
}

/// Cellular: `scan_with` rewrites warm measurement slots (name strings
/// included) through a warm geometry accelerator — bit-identical to
/// `scan`, and the steady-state sweep performs zero allocations.
#[test]
fn cellular_scan_with_matches_scan_and_stops_allocating() {
    let _g = lock();
    let s = Scenario::build(ScenarioKind::Rooftop);
    let db = paper_towers(&s.world.origin);
    let scanner = CellScanner::default();
    let mut accel = s.world.accel();
    let mut scratch = CellScratch::default();
    let mut out = Vec::new();
    for seed in [1u64, SEED] {
        let reference = scanner.scan(&s.world, &s.site, &db, seed);
        scanner.scan_with(&s.world, &mut accel, &s.site, &db, seed, &mut scratch, &mut out);
        assert_eq!(reference, out);
    }

    let reference = scanner.scan(&s.world, &s.site, &db, SEED);
    let before = AllocSnapshot::now();
    scanner.scan_with(&s.world, &mut accel, &s.site, &db, SEED, &mut scratch, &mut out);
    let delta = AllocSnapshot::now() - before;
    assert_eq!(reference, out);
    assert_eq!(
        delta.allocs, 0,
        "warm cellular scan_with allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}

/// Geometry: after one warm-up sweep, an indexed obstruction sweep with
/// warm scratch buffers is allocation-free, and a memoized sweep over
/// static emitters is allocation-free too (pure hash lookups).
#[test]
fn geometry_sweeps_are_allocation_free_after_warmup() {
    let _g = lock();
    let dense = aircal_env::scenarios::dense_city(8);
    let index = dense.world.index();
    let mut scratch = aircal_env::GeoScratch::new();
    let mut cache = aircal_env::PathCache::new();
    let mut out = Vec::new();
    let rays = 72;

    // Warm-up: scratch buffers size themselves, the memo fills.
    dense.world.obstruction_profile_with(
        &index, None, &dense.site, 1.09e9, 2.0, 50_000.0, rays, &mut scratch, &mut out,
    );
    dense.world.obstruction_profile_with(
        &index,
        Some(&mut cache),
        &dense.site,
        1.09e9,
        2.0,
        50_000.0,
        rays,
        &mut scratch,
        &mut out,
    );

    let before = AllocSnapshot::now();
    dense.world.obstruction_profile_with(
        &index, None, &dense.site, 1.09e9, 2.0, 50_000.0, rays, &mut scratch, &mut out,
    );
    let mid = AllocSnapshot::now();
    dense.world.obstruction_profile_with(
        &index,
        Some(&mut cache),
        &dense.site,
        1.09e9,
        2.0,
        50_000.0,
        rays,
        &mut scratch,
        &mut out,
    );
    let after = AllocSnapshot::now();

    let indexed = mid - before;
    let cached = after - mid;
    assert_eq!(
        indexed.allocs, 0,
        "warm indexed sweep allocated {} times ({} bytes)",
        indexed.allocs, indexed.bytes
    );
    assert_eq!(
        cached.allocs, 0,
        "warm memoized sweep allocated {} times ({} bytes)",
        cached.allocs, cached.bytes
    );
    assert_eq!(cache.misses(), rays as u64, "second memo sweep must be all hits");
}

/// `welch_psd_into` with a reused scratch matches the allocating
/// `welch_psd`, and the second call runs allocation-free.
#[test]
fn welch_psd_into_matches_and_stops_allocating() {
    let _g = lock();
    let samples: Vec<Cplx> = (0..4_096)
        .map(|i| Cplx::phasor(0.21 * i as f64) * (1.0 + 0.1 * (i as f64 * 0.01).sin()))
        .collect();
    let reference = welch_psd(&samples, 256, 0.5, Window::Hann).unwrap();
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    welch_psd_into(&samples, 256, 0.5, Window::Hann, &mut scratch, &mut out).unwrap();
    assert_eq!(reference, out);

    let before = AllocSnapshot::now();
    welch_psd_into(&samples, 256, 0.5, Window::Hann, &mut scratch, &mut out).unwrap();
    let delta = AllocSnapshot::now() - before;
    assert_eq!(reference, out);
    assert_eq!(delta.allocs, 0, "warm welch_psd_into allocated {}", delta.allocs);
}
