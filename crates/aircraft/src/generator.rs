//! Stochastic traffic generation over a survey disc.
//!
//! Populates the paper's 100 km FlightRadar24 query disc with a plausible
//! mix: mostly airliners in cruise or climb/descent, some low general
//! aviation. Everything derives from one seed, so a survey is exactly
//! reproducible.

use crate::flight::Flight;
use aircal_adsb::IcaoAddress;
use aircal_geo::LatLon;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Traffic-mix configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Center of the populated disc (the sensor's location).
    pub center: LatLon,
    /// Disc radius, meters (paper: 100 km).
    pub radius_m: f64,
    /// Number of aircraft inside the disc at t = 0.
    pub count: usize,
    /// Fraction of general-aviation (low/slow) traffic, 0–1.
    pub ga_fraction: f64,
    /// Fraction of aircraft with ADS-B OUT (the rest are Mode S-only and
    /// emit acquisition squitters but no positions). US airspace is ~90%
    /// equipped post-2020.
    pub adsb_out_fraction: f64,
}

impl TrafficConfig {
    /// The paper's setting: a 100 km disc around the sensor. Bay-Area-like
    /// density: ~60 aircraft in the disc.
    pub fn paper_default(center: LatLon) -> Self {
        Self {
            center,
            radius_m: 100_000.0,
            count: 60,
            ga_fraction: 0.2,
            adsb_out_fraction: 0.88,
        }
    }
}

/// A generated traffic snapshot: flights that can be propagated to any time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficSim {
    /// The generated flights.
    pub flights: Vec<Flight>,
    /// The configuration that produced them.
    pub config: TrafficConfig,
}

impl TrafficSim {
    /// Generate traffic from a seed. Positions are uniform over the disc,
    /// tracks uniform, altitude/speed drawn per class.
    pub fn generate(config: TrafficConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut used_icao = HashSet::new();
        let mut flights = Vec::with_capacity(config.count);
        for i in 0..config.count {
            // Uniform over the disc: r ∝ √u.
            let r = config.radius_m * rng.gen_range(0.0f64..1.0).sqrt();
            let bearing = rng.gen_range(0.0..360.0);
            let mut pos = config.center.destination(bearing, r);

            let is_ga = rng.gen_range(0.0..1.0) < config.ga_fraction;
            let (alt, speed) = if is_ga {
                (
                    rng.gen_range(600.0..3_000.0),
                    rng.gen_range(50.0..110.0),
                )
            } else {
                (
                    rng.gen_range(6_000.0..12_500.0),
                    rng.gen_range(180.0..260.0),
                )
            };
            pos.alt_m = alt;

            // 70% level flight, otherwise climbing or descending.
            let vr = match rng.gen_range(0u8..10) {
                0..=6 => 0.0,
                7 | 8 => rng.gen_range(2.0..12.0),
                _ => -rng.gen_range(2.0..12.0),
            };

            let icao = loop {
                let candidate = rng.gen_range(1u32..0x1_000_000);
                if used_icao.insert(candidate) {
                    break IcaoAddress::new(candidate);
                }
            };
            let callsign = format!(
                "{}{}{}{:03}",
                rng.gen_range(b'A'..=b'Z') as char,
                rng.gen_range(b'A'..=b'Z') as char,
                rng.gen_range(b'A'..=b'Z') as char,
                i % 1000
            );

            let adsb_out = rng.gen_range(0.0..1.0) < config.adsb_out_fraction;
            flights.push(Flight {
                icao,
                callsign,
                origin: pos,
                t0: 0.0,
                track_deg: rng.gen_range(0.0..360.0),
                ground_speed_mps: speed,
                vertical_rate_mps: vr,
                adsb_out,
            });
        }
        Self { flights, config }
    }

    /// Flights within `radius_m` of `center` at time `t`.
    pub fn within(&self, center: &LatLon, radius_m: f64, t: f64) -> Vec<&Flight> {
        self.flights
            .iter()
            .filter(|f| f.ground_distance_m(center, t) <= radius_m)
            .collect()
    }

    /// Find a flight by address.
    pub fn by_icao(&self, icao: IcaoAddress) -> Option<&Flight> {
        self.flights.iter().find(|f| f.icao == icao)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn center() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    #[test]
    fn generates_requested_count_inside_disc() {
        let sim = TrafficSim::generate(TrafficConfig::paper_default(center()), 1);
        assert_eq!(sim.flights.len(), 60);
        for f in &sim.flights {
            assert!(f.ground_distance_m(&center(), 0.0) <= 100_000.0 + 1.0);
            assert!(f.origin.alt_m >= 600.0 && f.origin.alt_m <= 12_500.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TrafficSim::generate(TrafficConfig::paper_default(center()), 42);
        let b = TrafficSim::generate(TrafficConfig::paper_default(center()), 42);
        assert_eq!(a.flights, b.flights);
        let c = TrafficSim::generate(TrafficConfig::paper_default(center()), 43);
        assert_ne!(a.flights, c.flights);
    }

    #[test]
    fn icao_addresses_unique() {
        let sim = TrafficSim::generate(TrafficConfig::paper_default(center()), 7);
        let mut set = HashSet::new();
        for f in &sim.flights {
            assert!(set.insert(f.icao), "duplicate {}", f.icao);
        }
    }

    #[test]
    fn positions_spread_across_bearings() {
        // Sanity against clustering: all four quadrants populated.
        let sim = TrafficSim::generate(TrafficConfig::paper_default(center()), 3);
        let mut quadrants = [0u32; 4];
        for f in &sim.flights {
            let b = center().bearing_deg(&f.origin);
            quadrants[(b / 90.0) as usize % 4] += 1;
        }
        for (q, &n) in quadrants.iter().enumerate() {
            assert!(n >= 5, "quadrant {q} only has {n}");
        }
    }

    #[test]
    fn within_filter_shrinks_with_radius() {
        let sim = TrafficSim::generate(TrafficConfig::paper_default(center()), 9);
        let all = sim.within(&center(), 100_000.0, 0.0).len();
        let near = sim.within(&center(), 20_000.0, 0.0).len();
        assert!(near < all);
    }

    #[test]
    fn by_icao_finds_flights() {
        let sim = TrafficSim::generate(TrafficConfig::paper_default(center()), 5);
        let probe = sim.flights[10].icao;
        assert_eq!(sim.by_icao(probe).unwrap().icao, probe);
        // An address guaranteed unused (0 is never generated).
        assert!(sim.by_icao(IcaoAddress::new(0)).is_none());
    }

    #[test]
    fn ga_fraction_zero_means_all_airliners() {
        let cfg = TrafficConfig {
            ga_fraction: 0.0,
            ..TrafficConfig::paper_default(center())
        };
        let sim = TrafficSim::generate(cfg, 11);
        for f in &sim.flights {
            assert!(f.origin.alt_m >= 6_000.0, "GA aircraft leaked in");
        }
    }
}
