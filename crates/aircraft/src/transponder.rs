//! Transponder emission schedules.
//!
//! DO-260B airborne broadcast rates: position and velocity squitters every
//! 0.4–0.6 s (so "at least two times per second", as the paper puts it),
//! identification every ~5 s. Position messages alternate CPR even/odd.
//! Each aircraft gets a random phase offset so bursts from different
//! aircraft rarely collide — and when they do, the decoder sees a garbled
//! overlap, exactly like the real channel.

use crate::flight::Flight;
use aircal_adsb::altitude::m_to_ft;
use aircal_adsb::cpr::{self, CprFormat};
use aircal_adsb::frame::{ModeSFrame, ShortSquitter};
use aircal_adsb::me::MePayload;
use aircal_adsb::AdsbFrame;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One scheduled transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Emission {
    /// Transmission start time, seconds.
    pub time_s: f64,
    /// The frame on the air (DF17 extended or DF11 short).
    pub frame: ModeSFrame,
    /// The transmitting aircraft's true position at `time_s` (for the
    /// channel model; not visible to the receiver except through CPR).
    pub position: aircal_geo::LatLon,
    /// Transmit power, dBm. DO-260B class A1+ transponders emit 75–500 W;
    /// the generator draws per-aircraft values across that range.
    pub tx_power_dbm: f64,
}

/// Generates the emission timeline for a set of flights over a window.
#[derive(Debug, Clone)]
pub struct TransponderSchedule {
    /// Position squitter interval, seconds (default 0.5).
    pub position_interval_s: f64,
    /// Velocity squitter interval, seconds (default 0.5).
    pub velocity_interval_s: f64,
    /// Identification interval, seconds (default 5.0).
    pub ident_interval_s: f64,
    /// DF11 acquisition-squitter interval, seconds (default 1.0) —
    /// emitted by every Mode S transponder, ADS-B-capable or not.
    pub acquisition_interval_s: f64,
}

impl Default for TransponderSchedule {
    fn default() -> Self {
        Self {
            position_interval_s: 0.5,
            velocity_interval_s: 0.5,
            ident_interval_s: 5.0,
            acquisition_interval_s: 1.0,
        }
    }
}

impl TransponderSchedule {
    /// Produce all emissions from `flights` in `[t_start, t_end)`, sorted
    /// by time. Deterministic in `seed` (per-aircraft phases and transmit
    /// powers).
    pub fn emissions(
        &self,
        flights: &[Flight],
        t_start: f64,
        t_end: f64,
        seed: u64,
    ) -> Vec<Emission> {
        let mut out = Vec::new();
        for (idx, f) in flights.iter().enumerate() {
            // Decorrelate aircraft deterministically by address.
            let mut rng =
                ChaCha8Rng::seed_from_u64(seed ^ (f.icao.value() as u64) << 8 ^ idx as u64);
            // 75–500 W, log-uniform: 48.75–57 dBm.
            let tx_power_dbm = rng.gen_range(48.75..57.0);
            let phase: f64 = rng.gen_range(0.0..self.position_interval_s);

            // Every Mode S transponder emits 1 Hz acquisition squitters.
            let a_phase = rng.gen_range(0.0..self.acquisition_interval_s);
            let mut k = ((t_start - a_phase) / self.acquisition_interval_s).ceil() as i64;
            loop {
                let t = a_phase + k as f64 * self.acquisition_interval_s;
                if t >= t_end {
                    break;
                }
                if t >= t_start {
                    out.push(Emission {
                        time_s: t,
                        frame: ModeSFrame::Short(ShortSquitter::new(f.icao)),
                        position: f.position_at(t),
                        tx_power_dbm,
                    });
                }
                k += 1;
            }
            if !f.adsb_out {
                continue; // Mode S-only: no DF17 broadcasts.
            }

            // Position squitters, alternating even/odd.
            let mut k = ((t_start - phase) / self.position_interval_s).ceil() as i64;
            loop {
                let t = phase + k as f64 * self.position_interval_s;
                if t >= t_end {
                    break;
                }
                if t >= t_start {
                    let pos = f.position_at(t);
                    let fmt = if k.rem_euclid(2) == 0 {
                        CprFormat::Even
                    } else {
                        CprFormat::Odd
                    };
                    let payload = MePayload::AirbornePosition {
                        altitude_ft: m_to_ft(pos.alt_m),
                        cpr: cpr::encode(pos.lat_deg, pos.lon_deg, fmt),
                    };
                    out.push(Emission {
                        time_s: t,
                        frame: ModeSFrame::Extended(AdsbFrame::new(f.icao, payload)),
                        position: pos,
                        tx_power_dbm,
                    });
                }
                k += 1;
            }

            // Velocity squitters, offset half an interval from positions.
            let v_phase = phase + self.velocity_interval_s / 2.0;
            let mut k = ((t_start - v_phase) / self.velocity_interval_s).ceil() as i64;
            loop {
                let t = v_phase + k as f64 * self.velocity_interval_s;
                if t >= t_end {
                    break;
                }
                if t >= t_start {
                    let (east_kt, north_kt) = f.velocity_kt();
                    let payload = MePayload::AirborneVelocity {
                        east_kt: east_kt.round(),
                        north_kt: north_kt.round(),
                        vertical_rate_fpm: (f.vertical_rate_fpm() / 64.0).round() * 64.0,
                    };
                    out.push(Emission {
                        time_s: t,
                        frame: ModeSFrame::Extended(AdsbFrame::new(f.icao, payload)),
                        position: f.position_at(t),
                        tx_power_dbm,
                    });
                }
                k += 1;
            }

            // Identification, sparse.
            let i_phase = rng.gen_range(0.0..self.ident_interval_s);
            let mut k = ((t_start - i_phase) / self.ident_interval_s).ceil() as i64;
            loop {
                let t = i_phase + k as f64 * self.ident_interval_s;
                if t >= t_end {
                    break;
                }
                if t >= t_start {
                    let payload = MePayload::Identification {
                        callsign: f.callsign.clone(),
                    };
                    out.push(Emission {
                        time_s: t,
                        frame: ModeSFrame::Extended(AdsbFrame::new(f.icao, payload)),
                        position: f.position_at(t),
                        tx_power_dbm,
                    });
                }
                k += 1;
            }
        }
        out.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_adsb::IcaoAddress;
    use aircal_geo::LatLon;

    fn flight() -> Flight {
        Flight {
            icao: IcaoAddress::new(0x123456),
            callsign: "TST42".into(),
            origin: LatLon::new(37.9, -122.3, 9_000.0),
            t0: 0.0,
            track_deg: 45.0,
            ground_speed_mps: 220.0,
            vertical_rate_mps: 0.0,
            adsb_out: true,
        }
    }

    #[test]
    fn rates_match_do260b() {
        let sched = TransponderSchedule::default();
        let e = sched.emissions(&[flight()], 0.0, 30.0, 1);
        let positions = e
            .iter()
            .filter(|m| matches!(m.frame.payload(), Some(MePayload::AirbornePosition { .. })))
            .count();
        let velocities = e
            .iter()
            .filter(|m| matches!(m.frame.payload(), Some(MePayload::AirborneVelocity { .. })))
            .count();
        let idents = e
            .iter()
            .filter(|m| matches!(m.frame.payload(), Some(MePayload::Identification { .. })))
            .count();
        // 30 s at 2 Hz → 59–61 depending on phase; ident ≈ 6.
        assert!((58..=62).contains(&positions), "positions {positions}");
        assert!((58..=62).contains(&velocities), "velocities {velocities}");
        assert!((5..=7).contains(&idents), "idents {idents}");
    }

    #[test]
    fn emissions_sorted_and_in_window() {
        let sched = TransponderSchedule::default();
        let flights = vec![flight(), {
            let mut f = flight();
            f.icao = IcaoAddress::new(0x654321);
            f
        }];
        let e = sched.emissions(&flights, 10.0, 20.0, 2);
        assert!(!e.is_empty());
        for w in e.windows(2) {
            assert!(w[0].time_s <= w[1].time_s);
        }
        assert!(e.iter().all(|m| m.time_s >= 10.0 && m.time_s < 20.0));
    }

    #[test]
    fn cpr_formats_alternate() {
        let sched = TransponderSchedule::default();
        let e = sched.emissions(&[flight()], 0.0, 5.0, 3);
        let formats: Vec<CprFormat> = e
            .iter()
            .filter_map(|m| match m.frame.payload() {
                Some(MePayload::AirbornePosition { cpr, .. }) => Some(cpr.format),
                _ => None,
            })
            .collect();
        assert!(formats.len() >= 8);
        for w in formats.windows(2) {
            assert_ne!(w[0], w[1], "even/odd must alternate");
        }
    }

    #[test]
    fn tx_power_in_spec_range() {
        let sched = TransponderSchedule::default();
        let sim = crate::generator::TrafficSim::generate(
            crate::generator::TrafficConfig::paper_default(LatLon::surface(37.87, -122.27)),
            4,
        );
        let e = sched.emissions(&sim.flights, 0.0, 2.0, 4);
        for m in &e {
            assert!(
                (48.7..=57.01).contains(&m.tx_power_dbm),
                "power {}",
                m.tx_power_dbm
            );
        }
        // Different aircraft draw different powers.
        let p0 = e[0].tx_power_dbm;
        assert!(e.iter().any(|m| (m.tx_power_dbm - p0).abs() > 0.1));
    }

    #[test]
    fn deterministic_per_seed() {
        let sched = TransponderSchedule::default();
        let a = sched.emissions(&[flight()], 0.0, 10.0, 9);
        let b = sched.emissions(&[flight()], 0.0, 10.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn moving_aircraft_position_advances_between_squitters() {
        let sched = TransponderSchedule::default();
        let e = sched.emissions(&[flight()], 0.0, 10.0, 5);
        let positions: Vec<_> = e
            .iter()
            .filter(|m| matches!(m.frame.payload(), Some(MePayload::AirbornePosition { .. })))
            .collect();
        let first = positions.first().unwrap();
        let last = positions.last().unwrap();
        assert!(first.position.distance_m(&last.position) > 1_000.0);
    }
}
