//! Air-traffic simulation: flights, transponder schedules, and a
//! FlightRadar24-style ground-truth service.
//!
//! The paper's directional survey needs two things from the sky:
//!
//! 1. **RF emissions** — every airborne aircraft broadcasts position and
//!    velocity extended squitters "at least two times per second"
//!    ([`transponder`]); the sensor under test tries to receive them.
//! 2. **Ground truth** — an independent flight-tracking service
//!    ([`ground_truth`]) reporting all aircraft within a query radius,
//!    with the ~10 s latency the paper measured for FlightRadar24.
//!
//! [`generator`] populates a 100 km disc with a realistic mix of airliners
//! and general-aviation traffic; [`flight`] propagates each along a
//! constant-track great-circle path (fine over the ≤2-minute windows the
//! calibration uses).

pub mod flight;
pub mod generator;
pub mod ground_truth;
pub mod transponder;

pub use flight::Flight;
pub use generator::{TrafficConfig, TrafficSim};
pub use ground_truth::{GroundTruthAircraft, GroundTruthService};
pub use transponder::{Emission, TransponderSchedule};
