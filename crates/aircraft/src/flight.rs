//! Individual flights and their kinematics.

use aircal_adsb::IcaoAddress;
use aircal_geo::LatLon;
use serde::{Deserialize, Serialize};

/// A simulated flight: identity plus a constant-velocity state at `t0`.
///
/// Over the ≤2-minute calibration windows, real aircraft fly essentially
/// straight great-circle segments, so the kinematic model is a constant
/// ground track/speed and a constant vertical rate (clamped to a sane
/// altitude band).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flight {
    /// Transponder address.
    pub icao: IcaoAddress,
    /// Callsign, e.g. `"UAL123"`.
    pub callsign: String,
    /// Position at `t0` (altitude in meters).
    pub origin: LatLon,
    /// Reference time for `origin`, seconds.
    pub t0: f64,
    /// Ground track, degrees clockwise from north.
    pub track_deg: f64,
    /// Ground speed, m/s.
    pub ground_speed_mps: f64,
    /// Vertical rate, m/s (positive climbing).
    pub vertical_rate_mps: f64,
    /// Does the transponder broadcast ADS-B OUT (DF17 position/velocity)?
    /// Mode S-only aircraft (`false`) still emit 1 Hz DF11 acquisition
    /// squitters, so they remain visible to presence matching.
    pub adsb_out: bool,
}

impl Flight {
    /// Altitude band aircraft stay within (m): floor keeps them airborne,
    /// ceiling is a practical service ceiling.
    pub const MIN_ALT_M: f64 = 300.0;
    /// See [`Self::MIN_ALT_M`].
    pub const MAX_ALT_M: f64 = 13_500.0;

    /// Position at absolute time `t` seconds.
    pub fn position_at(&self, t: f64) -> LatLon {
        let dt = t - self.t0;
        let mut p = self
            .origin
            .destination(self.track_deg, self.ground_speed_mps * dt);
        p.alt_m = (self.origin.alt_m + self.vertical_rate_mps * dt)
            .clamp(Self::MIN_ALT_M, Self::MAX_ALT_M);
        p
    }

    /// Velocity components in knots (east, north) — the units ADS-B
    /// velocity messages carry.
    pub fn velocity_kt(&self) -> (f64, f64) {
        const MPS_TO_KT: f64 = 1.943_844;
        let speed_kt = self.ground_speed_mps * MPS_TO_KT;
        let t = self.track_deg.to_radians();
        (speed_kt * t.sin(), speed_kt * t.cos())
    }

    /// Vertical rate in ft/min (ADS-B units).
    pub fn vertical_rate_fpm(&self) -> f64 {
        self.vertical_rate_mps / 0.3048 * 60.0
    }

    /// Ground distance from a reference point at time `t`, meters.
    pub fn ground_distance_m(&self, from: &LatLon, t: f64) -> f64 {
        from.distance_m(&self.position_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight() -> Flight {
        Flight {
            icao: IcaoAddress::new(0xA0B1C2),
            callsign: "TST001".into(),
            origin: LatLon::new(37.9, -122.3, 10_000.0),
            t0: 100.0,
            track_deg: 90.0,
            ground_speed_mps: 200.0,
            vertical_rate_mps: 0.0,
            adsb_out: true,
        }
    }

    #[test]
    fn stationary_at_t0() {
        let f = flight();
        let p = f.position_at(100.0);
        assert!(f.origin.distance_m(&p) < 0.01);
        assert_eq!(p.alt_m, 10_000.0);
    }

    #[test]
    fn moves_along_track() {
        let f = flight();
        let p = f.position_at(160.0); // 60 s → 12 km east
        assert!((f.origin.distance_m(&p) - 12_000.0).abs() < 1.0);
        assert!((f.origin.bearing_deg(&p) - 90.0).abs() < 0.1);
    }

    #[test]
    fn climb_clamped_at_ceiling() {
        let mut f = flight();
        f.vertical_rate_mps = 15.0;
        let p = f.position_at(100.0 + 3_600.0); // would be 64 km up
        assert_eq!(p.alt_m, Flight::MAX_ALT_M);
    }

    #[test]
    fn descent_clamped_at_floor() {
        let mut f = flight();
        f.vertical_rate_mps = -20.0;
        let p = f.position_at(100.0 + 3_600.0);
        assert_eq!(p.alt_m, Flight::MIN_ALT_M);
    }

    #[test]
    fn velocity_components_match_track() {
        let mut f = flight();
        f.track_deg = 0.0; // due north
        let (e, n) = f.velocity_kt();
        assert!(e.abs() < 1e-9);
        assert!((n - 200.0 * 1.943_844).abs() < 0.01);

        f.track_deg = 270.0; // due west
        let (e, n) = f.velocity_kt();
        assert!(e < 0.0);
        assert!(n.abs() < 1e-6);
    }

    #[test]
    fn vertical_rate_units() {
        let mut f = flight();
        f.vertical_rate_mps = 5.08; // 1000 ft/min
        assert!((f.vertical_rate_fpm() - 1_000.0).abs() < 0.1);
    }

    #[test]
    fn backwards_in_time_works_too() {
        let f = flight();
        let p = f.position_at(40.0); // 60 s before t0 → 12 km west
        assert!((f.origin.bearing_deg(&p) - 270.0).abs() < 0.1);
    }
}
