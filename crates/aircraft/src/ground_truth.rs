//! A FlightRadar24-style ground-truth service.
//!
//! The paper queries FlightRadar24 mid-measurement: "15 seconds into the
//! measurement, we retrieve all flight data … in a radius of 100 km" and
//! notes "FlightRadar24 reports a latency of 10 s, meaning reported
//! aircraft are within 2.5 km of reported location, sufficient for our
//! purpose." This service reproduces that interface — including the
//! staleness — against the simulated traffic.

use crate::generator::TrafficSim;
use aircal_adsb::IcaoAddress;
use aircal_geo::LatLon;
use serde::{Deserialize, Serialize};

/// One aircraft as reported by the tracking service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthAircraft {
    /// ICAO address (the matching key).
    pub icao: IcaoAddress,
    /// Callsign as filed.
    pub callsign: String,
    /// Reported position — where the aircraft was `latency_s` ago.
    pub position: LatLon,
    /// Reported ground speed, m/s.
    pub ground_speed_mps: f64,
    /// Reported track, degrees.
    pub track_deg: f64,
}

/// The tracking-service facade over the simulated world.
#[derive(Debug, Clone)]
pub struct GroundTruthService {
    /// Reporting latency in seconds (paper: 10 s for FlightRadar24).
    pub latency_s: f64,
}

impl Default for GroundTruthService {
    fn default() -> Self {
        Self { latency_s: 10.0 }
    }
}

impl GroundTruthService {
    /// Create a service with a given latency.
    pub fn new(latency_s: f64) -> Self {
        Self {
            latency_s: latency_s.max(0.0),
        }
    }

    /// Query all aircraft within `radius_m` of `center` at query time
    /// `t_query`. Both the membership test and the reported positions use
    /// the stale time `t_query − latency`, as a real aggregator would.
    pub fn query(
        &self,
        sim: &TrafficSim,
        center: &LatLon,
        radius_m: f64,
        t_query: f64,
    ) -> Vec<GroundTruthAircraft> {
        let t_stale = t_query - self.latency_s;
        sim.flights
            .iter()
            .filter(|f| f.ground_distance_m(center, t_stale) <= radius_m)
            .map(|f| GroundTruthAircraft {
                icao: f.icao,
                callsign: f.callsign.clone(),
                position: f.position_at(t_stale),
                ground_speed_mps: f.ground_speed_mps,
                track_deg: f.track_deg,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TrafficConfig;

    fn center() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    fn sim() -> TrafficSim {
        TrafficSim::generate(TrafficConfig::paper_default(center()), 21)
    }

    #[test]
    fn zero_latency_reports_true_positions() {
        let s = sim();
        let svc = GroundTruthService::new(0.0);
        let report = svc.query(&s, &center(), 100_000.0, 30.0);
        for r in &report {
            let truth = s.by_icao(r.icao).unwrap().position_at(30.0);
            assert!(r.position.distance_m(&truth) < 0.01);
        }
    }

    #[test]
    fn latency_introduces_bounded_staleness_error() {
        let s = sim();
        let svc = GroundTruthService::new(10.0);
        let report = svc.query(&s, &center(), 100_000.0, 30.0);
        assert!(!report.is_empty());
        for r in &report {
            let truth = s.by_icao(r.icao).unwrap().position_at(30.0);
            let err = r.position.distance_m(&truth);
            // The paper's bound: 10 s at ≤ 260 m/s → ≤ 2.6 km.
            assert!(err <= 2_600.0 + 1.0, "staleness error {err} m");
        }
        // Fast movers do show measurable staleness.
        let max_err = report
            .iter()
            .map(|r| {
                r.position
                    .distance_m(&s.by_icao(r.icao).unwrap().position_at(30.0))
            })
            .fold(0.0, f64::max);
        assert!(max_err > 500.0, "expected some staleness, max {max_err}");
    }

    #[test]
    fn radius_filter_respected() {
        let s = sim();
        let svc = GroundTruthService::default();
        let t = 15.0;
        let near = svc.query(&s, &center(), 30_000.0, t);
        let all = svc.query(&s, &center(), 100_000.0, t);
        assert!(near.len() < all.len());
        let t_stale = t - svc.latency_s;
        for r in &near {
            let d = s.by_icao(r.icao).unwrap().ground_distance_m(&center(), t_stale);
            assert!(d <= 30_000.0 + 1.0);
        }
    }

    #[test]
    fn report_carries_callsigns_and_kinematics() {
        let s = sim();
        let svc = GroundTruthService::default();
        let report = svc.query(&s, &center(), 100_000.0, 15.0);
        for r in &report {
            let f = s.by_icao(r.icao).unwrap();
            assert_eq!(r.callsign, f.callsign);
            assert_eq!(r.ground_speed_mps, f.ground_speed_mps);
            assert_eq!(r.track_deg, f.track_deg);
        }
    }

    #[test]
    fn negative_latency_clamped() {
        let svc = GroundTruthService::new(-5.0);
        assert_eq!(svc.latency_s, 0.0);
    }
}
