//! The srsUE-style cell scanner.
//!
//! For each tower in the database the scanner builds the propagation path
//! from the environment model, forms the per-resource-element link budget,
//! averages a handful of fading realizations (RSRP is averaged over many
//! subframes in a real UE), and reports the measurement — or a failed
//! synchronization when the reference signal lands below the sync floor.
//! "A missing bar indicates that the signal was too weak for srsUE to
//! decode successfully." (§3.2)

use crate::tower::{CellTower, TowerDatabase};
use aircal_env::{GeoAccel, SensorSite, World};
use aircal_rfprop::noise::noise_floor_dbm;
use aircal_rfprop::{LinkBudget, PathProfile};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Scanner configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScanConfig {
    /// RSRP below which the UE cannot synchronize to the cell, dBm.
    /// (srsUE on a BladeRF with a 7 dB NF and implementation margin loses
    /// PSS/SSS around here: −108 dBm RSRP is ~17 dB of per-RE SNR.)
    pub sync_rsrp_floor_dbm: f64,
    /// Number of fading realizations averaged into one RSRP reading.
    pub averaging_draws: usize,
    /// Front-end fault at the sensor (shared with the other measurement
    /// chains — a damaged cable hurts every band).
    pub fault: aircal_sdr::FrontendFault,
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self {
            sync_rsrp_floor_dbm: -108.0,
            averaging_draws: 16,
            fault: aircal_sdr::FrontendFault::None,
        }
    }
}

/// One cell-search result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellMeasurement {
    /// Tower name (for reports; a real UE would only know PCI/EARFCN).
    pub tower_name: String,
    /// Physical cell ID.
    pub pci: u16,
    /// Downlink EARFCN.
    pub earfcn: u32,
    /// Downlink carrier frequency, Hz.
    pub freq_hz: f64,
    /// Measured RSRP in dBm — `None` when synchronization failed (the
    /// paper's missing bar).
    pub rsrp_dbm: Option<f64>,
    /// Reference-signal SNR over one RE bandwidth, dB (when synced).
    pub rs_snr_db: Option<f64>,
    /// Deterministic obstruction loss on this path (diffraction +
    /// penetration), dB — diagnostic, not observable by a real UE.
    pub obstruction_db: f64,
}

/// Reusable working memory for a cell sweep: the linear-power fading
/// draws averaged into each tower's RSRP. Reusing one scratch across
/// sweeps keeps the steady-state scan allocation-free.
#[derive(Debug, Clone, Default)]
pub struct CellScratch {
    draws: Vec<f64>,
}

/// The scanner.
#[derive(Debug, Clone, Default)]
pub struct CellScanner {
    /// Configuration.
    pub config: ScanConfig,
}

impl CellScanner {
    /// Create a scanner.
    pub fn new(config: ScanConfig) -> Self {
        Self { config }
    }

    /// Measure one tower from `site` within `world`. Deterministic in
    /// `seed` (used for the fading draws).
    pub fn measure(
        &self,
        world: &World,
        site: &SensorSite,
        tower: &CellTower,
        seed: u64,
    ) -> CellMeasurement {
        let path = world.path_profile(site, &tower.position, tower.dl_freq_hz());
        self.measure_with_path(&path, site, tower, seed)
    }

    /// [`CellScanner::measure`] with the propagation path already in hand
    /// — the geo-accelerated scan resolves the static towers through the
    /// world's spatial index and memo first.
    pub fn measure_with_path(
        &self,
        path: &PathProfile,
        site: &SensorSite,
        tower: &CellTower,
        seed: u64,
    ) -> CellMeasurement {
        let mut scratch = CellScratch::default();
        let mut out = CellMeasurement::default();
        self.measure_into(path, site, tower, seed, &mut scratch, &mut out);
        out
    }

    /// [`CellScanner::measure_with_path`] into caller-owned working memory
    /// and result slot: the fading draws land in `scratch` and the fields
    /// of `out` (including its name `String`) are rewritten in place, so a
    /// warm sweep performs no allocation at all. Every `measure` variant
    /// routes through here, keeping all paths bit-identical.
    pub fn measure_into(
        &self,
        path: &PathProfile,
        site: &SensorSite,
        tower: &CellTower,
        seed: u64,
        scratch: &mut CellScratch,
        out: &mut CellMeasurement,
    ) {
        let freq = tower.dl_freq_hz();
        let bearing = site.position.bearing_deg(&tower.position);
        let elevation = site.position.elevation_deg(&tower.position);
        let rx_gain = site.antenna.gain_dbi(bearing, elevation);
        let budget = LinkBudget::new(tower.rs_eirp_per_re_dbm(), 0.0, rx_gain);

        // RSRP averages power across subframes: average fading draws in
        // the linear domain, reduced in the canonical lane order of
        // `aircal_dsp::simd` so every dispatch arm agrees bitwise.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ tower.pci as u64);
        let draws = self.config.averaging_draws.max(1);
        scratch.draws.clear();
        scratch
            .draws
            .extend((0..draws).map(|_| 10f64.powf(budget.sample_rx_dbm(path, &mut rng) / 10.0)));
        let mean_lin = (aircal_dsp::kernels().sum_f64)(&scratch.draws) / draws as f64;
        let rsrp = 10.0 * mean_lin.log10() - self.config.fault.loss_db(freq);

        let synced = rsrp >= self.config.sync_rsrp_floor_dbm;
        let rs_snr = rsrp - noise_floor_dbm(15_000.0, site.noise_figure_db);
        out.tower_name.clear();
        out.tower_name.push_str(&tower.name);
        out.pci = tower.pci;
        out.earfcn = tower.earfcn;
        out.freq_hz = freq;
        out.rsrp_dbm = synced.then_some(rsrp);
        out.rs_snr_db = synced.then_some(rs_snr);
        out.obstruction_db = path.diffraction_db + path.penetration_db;
    }

    /// Scan every tower in the database (the srsUE "cell search sweep").
    /// Thin allocating wrapper over [`CellScanner::scan_into`].
    pub fn scan(
        &self,
        world: &World,
        site: &SensorSite,
        db: &TowerDatabase,
        seed: u64,
    ) -> Vec<CellMeasurement> {
        let mut out = Vec::new();
        self.scan_into(world, site, db, seed, &mut out);
        out
    }

    /// [`CellScanner::scan`] into a caller-owned buffer (cleared first).
    /// Reusing `out` keeps repeated sweeps allocation-free apart from the
    /// per-tower name strings in the results.
    pub fn scan_into(
        &self,
        world: &World,
        site: &SensorSite,
        db: &TowerDatabase,
        seed: u64,
        out: &mut Vec<CellMeasurement>,
    ) {
        let _span = aircal_obs::span!("cell_scan");
        out.clear();
        out.extend(db.all().iter().map(|t| self.measure(world, site, t, seed)));
    }

    /// [`CellScanner::scan_into`] resolving each tower's propagation path
    /// through the world's spatial index and path memo. Towers are static,
    /// so after the first sweep every path is a cache hit. Bit-identical to
    /// the brute-force scan.
    pub fn scan_with_geo(
        &self,
        world: &World,
        accel: &mut GeoAccel,
        site: &SensorSite,
        db: &TowerDatabase,
        seed: u64,
        out: &mut Vec<CellMeasurement>,
    ) {
        let _span = aircal_obs::span!("cell_scan");
        out.clear();
        out.extend(db.all().iter().map(|t| {
            let path = accel.profile(world, site, &t.position, t.dl_freq_hz());
            self.measure_with_path(&path, site, t, seed)
        }));
    }

    /// [`CellScanner::scan_with_geo`] with reused working memory *and*
    /// reused result slots: measurements are rewritten in place (name
    /// strings included), so a warm sweep over static towers performs
    /// zero allocations. Bit-identical to [`CellScanner::scan`].
    #[allow(clippy::too_many_arguments)]
    pub fn scan_with(
        &self,
        world: &World,
        accel: &mut GeoAccel,
        site: &SensorSite,
        db: &TowerDatabase,
        seed: u64,
        scratch: &mut CellScratch,
        out: &mut Vec<CellMeasurement>,
    ) {
        let _span = aircal_obs::span!("cell_scan");
        let towers = db.all();
        out.truncate(towers.len());
        for (i, t) in towers.iter().enumerate() {
            let path = accel.profile(world, site, &t.position, t.dl_freq_hz());
            if i < out.len() {
                self.measure_into(&path, site, t, seed, scratch, &mut out[i]);
            } else {
                let mut m = CellMeasurement::default();
                self.measure_into(&path, site, t, seed, scratch, &mut m);
                out.push(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tower::paper_towers;
    use aircal_env::{paper_scenarios, Scenario, ScenarioKind};

    fn scan_scenario(s: &Scenario) -> Vec<CellMeasurement> {
        let db = paper_towers(&s.world.origin);
        CellScanner::default().scan(&s.world, &s.site, &db, 7)
    }

    /// The paper's Figure 3 decode pattern: rooftop syncs to all five
    /// towers; the window site to towers 1–3; the indoor site to tower 1
    /// only.
    #[test]
    fn figure3_decode_pattern() {
        let scenarios = paper_scenarios();
        let pattern: Vec<Vec<bool>> = scenarios
            .iter()
            .map(|s| scan_scenario(s).iter().map(|m| m.rsrp_dbm.is_some()).collect())
            .collect();
        assert_eq!(pattern[0], vec![true; 5], "rooftop must see all towers");
        assert_eq!(
            pattern[1],
            vec![true, true, true, false, false],
            "window must see towers 1–3 only"
        );
        assert_eq!(
            pattern[2],
            vec![true, false, false, false, false],
            "indoor must see tower 1 only"
        );
    }

    /// RSRP ordering per tower: rooftop ≥ window ≥ indoor (when measured).
    #[test]
    fn rsrp_ordering_across_locations() {
        let scenarios = paper_scenarios();
        let all: Vec<Vec<CellMeasurement>> =
            scenarios.iter().map(scan_scenario).collect();
        for (t, roof_m) in all[0].iter().enumerate().take(5) {
            let roof = roof_m.rsrp_dbm;
            let window = all[1][t].rsrp_dbm;
            let indoor = all[2][t].rsrp_dbm;
            if let (Some(r), Some(w)) = (roof, window) {
                assert!(r > w, "tower {t}: roof {r} !> window {w}");
            }
            if let (Some(w), Some(i)) = (window, indoor) {
                assert!(w > i - 3.0, "tower {t}: window {w} vs indoor {i}");
            }
        }
    }

    /// Tower 1 (700 MHz) penetrates indoors — the paper's headline
    /// low-band effect — at a level near the paper's ≈ −80 dBm.
    #[test]
    fn tower1_indoor_level() {
        let indoor = Scenario::build(ScenarioKind::Indoor);
        let m = &scan_scenario(&indoor)[0];
        let rsrp = m.rsrp_dbm.expect("tower 1 must be measurable indoors");
        assert!(
            (-95.0..=-65.0).contains(&rsrp),
            "indoor tower-1 RSRP {rsrp} outside plausible band"
        );
    }

    /// Rooftop RSRP levels are "very high" (paper: roughly −40…−55 for the
    /// unobstructed towers).
    #[test]
    fn rooftop_levels_strong_for_clear_towers() {
        let roof = Scenario::build(ScenarioKind::Rooftop);
        let ms = scan_scenario(&roof);
        for m in &ms[..3] {
            let rsrp = m.rsrp_dbm.unwrap();
            assert!(
                (-70.0..=-35.0).contains(&rsrp),
                "{} rooftop RSRP {rsrp}",
                m.tower_name
            );
        }
    }

    /// The geo-accelerated sweep must match the brute-force scan bit for
    /// bit, cold and warm.
    #[test]
    fn geo_scan_matches_brute_force() {
        for kind in [ScenarioKind::Rooftop, ScenarioKind::BehindWindow, ScenarioKind::Indoor] {
            let s = Scenario::build(kind);
            let db = paper_towers(&s.world.origin);
            let scanner = CellScanner::default();
            let brute = scanner.scan(&s.world, &s.site, &db, 7);
            let mut accel = s.world.accel();
            let mut cold = Vec::new();
            scanner.scan_with_geo(&s.world, &mut accel, &s.site, &db, 7, &mut cold);
            assert_eq!(brute, cold, "{kind:?}: cold geo scan diverged");
            let mut warm = Vec::new();
            scanner.scan_with_geo(&s.world, &mut accel, &s.site, &db, 7, &mut warm);
            assert_eq!(brute, warm, "{kind:?}: warm geo scan diverged");
            assert_eq!(accel.cache.hits(), db.all().len() as u64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Scenario::build(ScenarioKind::Rooftop);
        let db = paper_towers(&s.world.origin);
        let a = CellScanner::default().scan(&s.world, &s.site, &db, 9);
        let b = CellScanner::default().scan(&s.world, &s.site, &db, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sync_floor_configurable() {
        // With an absurdly high floor nothing syncs; with a very low one
        // everything does.
        let s = Scenario::build(ScenarioKind::Rooftop);
        let db = paper_towers(&s.world.origin);
        let deaf = CellScanner::new(ScanConfig {
            sync_rsrp_floor_dbm: 0.0,
            averaging_draws: 4,
            ..Default::default()
        });
        assert!(deaf
            .scan(&s.world, &s.site, &db, 1)
            .iter()
            .all(|m| m.rsrp_dbm.is_none()));
        let keen = CellScanner::new(ScanConfig {
            sync_rsrp_floor_dbm: -200.0,
            averaging_draws: 4,
            ..Default::default()
        });
        assert!(keen
            .scan(&s.world, &s.site, &db, 1)
            .iter()
            .all(|m| m.rsrp_dbm.is_some()));
    }
}
