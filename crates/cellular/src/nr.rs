//! 5G NR: the global frequency raster (NR-ARFCN), a set of modeled bands
//! including millimeter wave, and NR cell measurement.
//!
//! §3.2: "Mobile networks in North America can operate from as low as 617
//! MHz all the way to 4499 MHz in 4G networks. In addition, 5G also
//! supports millimeter-wave bands from 24 to 48 GHz." The mmWave ablation
//! (A6) uses these carriers to show the frequency-response technique
//! extending to FR2 — where *any* obstruction is fatal.

use crate::scan::{CellMeasurement, CellScanner};
use aircal_env::{SensorSite, World};
use aircal_geo::LatLon;
use aircal_rfprop::noise::noise_floor_dbm;
use aircal_rfprop::LinkBudget;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Modeled NR operating bands (downlink ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NrBand {
    /// 617–652 MHz (FR1 low band; LTE B71 refarm).
    N71,
    /// 2496–2690 MHz (FR1 mid band).
    N41,
    /// 3300–4200 MHz (FR1 C-band).
    N77,
    /// 3300–3800 MHz (FR1 C-band subset).
    N78,
    /// 26.5–29.5 GHz (FR2 mmWave).
    N257,
    /// 37–40 GHz (FR2 mmWave).
    N260,
}

impl NrBand {
    /// Downlink frequency range in Hz.
    pub fn dl_range_hz(&self) -> (f64, f64) {
        match self {
            NrBand::N71 => (617e6, 652e6),
            NrBand::N41 => (2_496e6, 2_690e6),
            NrBand::N77 => (3_300e6, 4_200e6),
            NrBand::N78 => (3_300e6, 3_800e6),
            NrBand::N257 => (26_500e6, 29_500e6),
            NrBand::N260 => (37_000e6, 40_000e6),
        }
    }

    /// Is this a millimeter-wave (FR2) band?
    pub fn is_fr2(&self) -> bool {
        matches!(self, NrBand::N257 | NrBand::N260)
    }

    /// Subcarrier spacing used by our model for this band, Hz.
    pub fn scs_hz(&self) -> f64 {
        if self.is_fr2() {
            120_000.0
        } else {
            30_000.0
        }
    }

    /// Does the band contain this downlink frequency?
    pub fn contains(&self, freq_hz: f64) -> bool {
        let (lo, hi) = self.dl_range_hz();
        freq_hz >= lo && freq_hz <= hi
    }
}

/// Convert an NR-ARFCN to frequency per the TS 38.104 global raster.
///
/// Returns `None` for values outside the defined 0–3279165 range.
pub fn nr_arfcn_to_freq_hz(arfcn: u32) -> Option<f64> {
    match arfcn {
        0..=599_999 => Some(5e3 * arfcn as f64),
        600_000..=2_016_666 => Some(3_000e6 + 15e3 * (arfcn - 600_000) as f64),
        2_016_667..=3_279_165 => Some(24_250.08e6 + 60e3 * (arfcn - 2_016_667) as f64),
        _ => None,
    }
}

/// Convert a frequency to the nearest NR-ARFCN on the global raster.
pub fn freq_hz_to_nr_arfcn(freq_hz: f64) -> Option<u32> {
    if !(0.0..=100_000e6).contains(&freq_hz) {
        return None;
    }
    if freq_hz < 3_000e6 {
        Some((freq_hz / 5e3).round() as u32)
    } else if freq_hz < 24_250.08e6 {
        Some(600_000 + ((freq_hz - 3_000e6) / 15e3).round() as u32)
    } else {
        let n = 2_016_667 + ((freq_hz - 24_250.08e6) / 60e3).round() as i64;
        (n <= 3_279_165).then_some(n as u32)
    }
}

/// One NR cell (gNB carrier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NrCell {
    /// Display name.
    pub name: String,
    /// Physical cell ID.
    pub pci: u16,
    /// Operating band.
    pub band: NrBand,
    /// NR-ARFCN on the global raster.
    pub arfcn: u32,
    /// Site position (`alt_m` = antenna height).
    pub position: LatLon,
    /// Total EIRP, dBm. (FR2 cells use massive beamforming: high EIRP,
    /// narrow beams — we model the beam pointed at the sensor, the
    /// best case.)
    pub eirp_dbm: f64,
    /// Carrier bandwidth, Hz.
    pub bandwidth_hz: f64,
}

impl NrCell {
    /// Downlink carrier frequency, Hz.
    pub fn dl_freq_hz(&self) -> f64 {
        nr_arfcn_to_freq_hz(self.arfcn).expect("cell ARFCN on the raster")
    }

    /// SSB/reference EIRP per resource element, dBm.
    pub fn rs_eirp_per_re_dbm(&self) -> f64 {
        let n_re = (self.bandwidth_hz / self.band.scs_hz()).max(1.0);
        self.eirp_dbm - 10.0 * n_re.log10()
    }
}

/// An extended tower set for the 5G ablation: FR1 low/mid/C-band plus an
/// FR2 mmWave cell, all west of the site (the rooftop's open sector).
pub fn nr_extension_cells(origin: &LatLon) -> Vec<NrCell> {
    let cell = |name: &str, pci, band: NrBand, freq_hz: f64, bearing, dist, eirp, bw| {
        let mut pos = origin.destination(bearing, dist);
        pos.alt_m = 25.0;
        NrCell {
            name: name.to_string(),
            pci,
            band,
            arfcn: freq_hz_to_nr_arfcn(freq_hz).expect("on raster"),
            position: pos,
            eirp_dbm: eirp,
            bandwidth_hz: bw,
        }
    };
    vec![
        cell("gNB-n71", 601, NrBand::N71, 632e6, 245.0, 800.0, 62.0, 10e6),
        cell("gNB-n41", 602, NrBand::N41, 2_593e6, 285.0, 500.0, 68.0, 60e6),
        cell("gNB-n77", 603, NrBand::N77, 3_700e6, 300.0, 450.0, 70.0, 80e6),
        cell(
            "gNB-n257",
            604,
            NrBand::N257,
            28_000e6,
            270.0,
            200.0,
            75.0,
            200e6,
        ),
    ]
}

impl CellScanner {
    /// Measure an NR cell — same synchronization model as LTE, at the NR
    /// carrier and subcarrier spacing.
    pub fn measure_nr(
        &self,
        world: &World,
        site: &SensorSite,
        cell: &NrCell,
        seed: u64,
    ) -> CellMeasurement {
        let freq = cell.dl_freq_hz();
        let path = world.path_profile(site, &cell.position, freq);
        let bearing = site.position.bearing_deg(&cell.position);
        let elevation = site.position.elevation_deg(&cell.position);
        let rx_gain = site.antenna.gain_dbi(bearing, elevation);
        let budget = LinkBudget::new(cell.rs_eirp_per_re_dbm(), 0.0, rx_gain);

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ cell.pci as u64);
        let draws = self.config.averaging_draws.max(1);
        let mean_lin: f64 = (0..draws)
            .map(|_| 10f64.powf(budget.sample_rx_dbm(&path, &mut rng) / 10.0))
            .sum::<f64>()
            / draws as f64;
        let rsrp = 10.0 * mean_lin.log10() - self.config.fault.loss_db(freq);

        let synced = rsrp >= self.config.sync_rsrp_floor_dbm;
        let rs_snr = rsrp - noise_floor_dbm(cell.band.scs_hz(), site.noise_figure_db);
        CellMeasurement {
            tower_name: cell.name.clone(),
            pci: cell.pci,
            earfcn: cell.arfcn,
            freq_hz: freq,
            rsrp_dbm: synced.then_some(rsrp),
            rs_snr_db: synced.then_some(rs_snr),
            obstruction_db: path.diffraction_db + path.penetration_db,
        }
    }

    /// Sweep an NR cell list.
    pub fn scan_nr(
        &self,
        world: &World,
        site: &SensorSite,
        cells: &[NrCell],
        seed: u64,
    ) -> Vec<CellMeasurement> {
        cells
            .iter()
            .map(|c| self.measure_nr(world, site, c, seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aircal_env::{Scenario, ScenarioKind};

    #[test]
    fn raster_reference_points() {
        // Boundary anchors from TS 38.104.
        assert_eq!(nr_arfcn_to_freq_hz(0), Some(0.0));
        assert_eq!(nr_arfcn_to_freq_hz(600_000), Some(3_000e6));
        assert_eq!(nr_arfcn_to_freq_hz(2_016_667), Some(24_250.08e6));
        assert_eq!(nr_arfcn_to_freq_hz(3_279_166), None);
        // A classic C-band point: 3 700 MHz → 646667 ≈ 3.7 GHz.
        let f = nr_arfcn_to_freq_hz(646_667).unwrap();
        assert!((f - 3_700.005e6).abs() < 10e3);
    }

    #[test]
    fn raster_round_trip() {
        for f in [632e6, 2_593e6, 3_700e6, 28_000e6, 39_500e6] {
            let n = freq_hz_to_nr_arfcn(f).unwrap();
            let back = nr_arfcn_to_freq_hz(n).unwrap();
            assert!((back - f).abs() <= 30e3, "{f}: {back}");
        }
        assert_eq!(freq_hz_to_nr_arfcn(-1.0), None);
        assert_eq!(freq_hz_to_nr_arfcn(150e9), None);
    }

    #[test]
    fn band_properties() {
        assert!(NrBand::N257.is_fr2());
        assert!(!NrBand::N78.is_fr2());
        assert!(NrBand::N78.contains(3_500e6));
        assert!(!NrBand::N78.contains(4_000e6));
        assert!(NrBand::N77.contains(4_000e6));
        assert_eq!(NrBand::N41.scs_hz(), 30_000.0);
        assert_eq!(NrBand::N260.scs_hz(), 120_000.0);
    }

    #[test]
    fn extension_cells_on_their_bands() {
        let origin = LatLon::surface(37.8716, -122.2727);
        for c in nr_extension_cells(&origin) {
            assert!(
                c.band.contains(c.dl_freq_hz()),
                "{} at {} Hz outside {:?}",
                c.name,
                c.dl_freq_hz(),
                c.band
            );
        }
    }

    /// The A6 story: FR1 NR cells behave like their LTE neighbors, while
    /// the 28 GHz cell is measurable only from the unobstructed rooftop —
    /// indoors the mmWave link is stone dead.
    #[test]
    fn mmwave_requires_line_of_sight() {
        let scanner = CellScanner::default();
        let roof = Scenario::build(ScenarioKind::Rooftop);
        let indoor = Scenario::build(ScenarioKind::Indoor);
        let cells = nr_extension_cells(&roof.world.origin);
        let mm = cells.iter().find(|c| c.band.is_fr2()).unwrap();

        let roof_m = scanner.measure_nr(&roof.world, &roof.site, mm, 5);
        let indoor_m = scanner.measure_nr(&indoor.world, &indoor.site, mm, 5);
        assert!(
            roof_m.rsrp_dbm.is_some(),
            "rooftop must sync to the mmWave cell: {roof_m:?}"
        );
        assert!(
            indoor_m.rsrp_dbm.is_none(),
            "indoor mmWave must be dead: {indoor_m:?}"
        );
    }

    #[test]
    fn n71_penetrates_like_lte_b71() {
        let scanner = CellScanner::default();
        let indoor = Scenario::build(ScenarioKind::Indoor);
        let cells = nr_extension_cells(&indoor.world.origin);
        let low = cells.iter().find(|c| c.band == NrBand::N71).unwrap();
        let m = scanner.measure_nr(&indoor.world, &indoor.site, low, 6);
        assert!(m.rsrp_dbm.is_some(), "600 MHz NR should survive indoors");
    }
}
