//! Cellular (4G/5G) substrate: band plans, a cellmapper-style tower
//! database, and an srsUE-style cell scanner that measures RSRP.
//!
//! §3.2 of the paper: "We utilized srsUE as software client user
//! equipment … srsUE is able to scan for nearby cellular networks and
//! measure their Reference Signal Received Power (RSRP) … There are
//! databases such as cellmapper.net that show cellular towers in a region
//! with their exact channel (i.e., ARFCN)."
//!
//! The scanner here reproduces that measurement chain at the link level:
//! tower EIRP → per-resource-element reference power → path profile from
//! the environment model → RSRP at the antenna port → synchronization
//! threshold. A cell below the threshold yields **no measurement** — the
//! paper's "missing bar" in Figure 3.

pub mod bands;
pub mod nr;
pub mod scan;
pub mod tower;

pub use bands::{earfcn_to_dl_freq_hz, Band};
pub use nr::{nr_arfcn_to_freq_hz, nr_extension_cells, NrBand, NrCell};
pub use scan::{CellMeasurement, CellScanner, CellScratch, ScanConfig};
pub use tower::{paper_towers, CellTower, TowerDatabase};
