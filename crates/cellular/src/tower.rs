//! Cell towers and the cellmapper-style database.

use crate::bands::Band;
use aircal_geo::LatLon;
use serde::{Deserialize, Serialize};

/// One cell site (one carrier on one tower).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTower {
    /// Display name ("Tower 1" … in the paper's Figure 2).
    pub name: String,
    /// Physical cell ID.
    pub pci: u16,
    /// Operating band.
    pub band: Band,
    /// Downlink EARFCN.
    pub earfcn: u32,
    /// Tower position; `alt_m` is the antenna center height above ground.
    pub position: LatLon,
    /// Total EIRP across the carrier, dBm.
    pub eirp_dbm: f64,
    /// Downlink channel bandwidth, Hz (10 MHz typical).
    pub bandwidth_hz: f64,
}

impl CellTower {
    /// Downlink carrier frequency, Hz.
    pub fn dl_freq_hz(&self) -> f64 {
        self.band
            .dl_freq_hz(self.earfcn)
            .expect("tower EARFCN must be valid for its band")
    }

    /// Reference-signal EIRP per resource element, dBm: total EIRP spread
    /// evenly over the carrier's resource elements (12 subcarriers × 50 RB
    /// for 10 MHz → 600 RE).
    pub fn rs_eirp_per_re_dbm(&self) -> f64 {
        let n_re = (self.bandwidth_hz / 15_000.0).max(1.0);
        self.eirp_dbm - 10.0 * n_re.log10()
    }
}

/// A queryable set of towers (what cellmapper gives you for a region).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TowerDatabase {
    towers: Vec<CellTower>,
}

impl TowerDatabase {
    /// Build from a tower list.
    pub fn new(towers: Vec<CellTower>) -> Self {
        Self { towers }
    }

    /// All towers.
    pub fn all(&self) -> &[CellTower] {
        &self.towers
    }

    /// Towers within a radius of a point.
    pub fn near(&self, center: &LatLon, radius_m: f64) -> Vec<&CellTower> {
        self.towers
            .iter()
            .filter(|t| center.distance_m(&t.position) <= radius_m)
            .collect()
    }

    /// Towers on a given band.
    pub fn on_band(&self, band: Band) -> Vec<&CellTower> {
        self.towers.iter().filter(|t| t.band == band).collect()
    }

    /// Look up by name.
    pub fn by_name(&self, name: &str) -> Option<&CellTower> {
        self.towers.iter().find(|t| t.name == name)
    }
}

/// The paper's Figure 2 testbed: five towers, 500–1000 m from the site,
/// with downlink carriers at 731 / 1970 / 2145 / 2660 / 2680 MHz.
///
/// Figure 2 is a map; exact bearings are not published. We place towers
/// 1–3 in the west-southwest (visible from the rooftop's open sector and
/// through the window site's walls) and towers 4–5 behind the rooftop
/// penthouse / the window site's flanking neighbors, which reproduces the
/// paper's reception pattern (rooftop: all 5; window: 1–3; indoor: 1).
/// The substitution is recorded in EXPERIMENTS.md.
pub fn paper_towers(origin: &LatLon) -> TowerDatabase {
    let tower = |name: &str, pci, band: Band, freq_mhz: f64, bearing, dist, eirp| {
        let mut pos = origin.destination(bearing, dist);
        pos.alt_m = 30.0;
        CellTower {
            name: name.to_string(),
            pci,
            band,
            earfcn: band
                .earfcn_for_freq(freq_mhz * 1e6)
                .expect("paper frequency on raster"),
            position: pos,
            eirp_dbm: eirp,
            bandwidth_hz: 10e6,
        }
    };
    TowerDatabase::new(vec![
        tower("Tower 1", 101, Band::B12, 731.0, 250.0, 700.0, 62.0),
        tower("Tower 2", 202, Band::B2, 1970.0, 290.0, 550.0, 62.0),
        tower("Tower 3", 303, Band::B4, 2145.0, 310.0, 850.0, 62.0),
        tower("Tower 4", 404, Band::B7, 2660.0, 200.0, 950.0, 62.0),
        tower("Tower 5", 505, Band::B7, 2680.0, 50.0, 600.0, 62.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> LatLon {
        LatLon::surface(37.8716, -122.2727)
    }

    #[test]
    fn paper_towers_match_figure_parameters() {
        let db = paper_towers(&origin());
        assert_eq!(db.all().len(), 5);
        let freqs: Vec<f64> = db.all().iter().map(|t| t.dl_freq_hz() / 1e6).collect();
        assert_eq!(freqs, vec![731.0, 1970.0, 2145.0, 2660.0, 2680.0]);
        for t in db.all() {
            let d = origin().distance_m(&t.position);
            assert!(
                (500.0..=1_000.0).contains(&d),
                "{} at {d} m (paper: 500–1000 m)",
                t.name
            );
        }
    }

    #[test]
    fn rs_power_per_re() {
        let db = paper_towers(&origin());
        let t = db.by_name("Tower 1").unwrap();
        // 62 dBm over ~667 RE (10 MHz / 15 kHz) ≈ 62 − 28.2.
        assert!((t.rs_eirp_per_re_dbm() - (62.0 - 28.24)).abs() < 0.1);
    }

    #[test]
    fn near_and_band_queries() {
        let db = paper_towers(&origin());
        assert_eq!(db.near(&origin(), 650.0).len(), 2); // towers 2 and 5
        assert_eq!(db.on_band(Band::B7).len(), 2);
        assert!(db.by_name("Tower 3").is_some());
        assert!(db.by_name("Tower 9").is_none());
    }

    #[test]
    fn tower_heights_set() {
        let db = paper_towers(&origin());
        for t in db.all() {
            assert_eq!(t.position.alt_m, 30.0);
        }
    }
}
