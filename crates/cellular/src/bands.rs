//! LTE band plan and EARFCN arithmetic (3GPP TS 36.101 §5.7.3).
//!
//! The paper's five towers use downlink carriers at 731, 1970, 2145, 2660
//! and 2680 MHz — bands 12, 2, 4 (or 66) and 7 in the North American plan.
//! "Mobile networks in North America can operate from as low as 617 MHz all
//! the way to 4499 MHz."

use serde::{Deserialize, Serialize};

/// An LTE operating band with its downlink frequency plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Band {
    /// 1930–1990 MHz DL (PCS).
    B2,
    /// 2110–2155 MHz DL (AWS-1).
    B4,
    /// 869–894 MHz DL (Cellular 850).
    B5,
    /// 2620–2690 MHz DL (IMT-E 2600).
    B7,
    /// 729–746 MHz DL (Lower SMH 700).
    B12,
    /// 746–756 MHz DL (Upper SMH C).
    B13,
    /// 2110–2200 MHz DL (AWS-3).
    B66,
    /// 617–652 MHz DL (600 MHz).
    B71,
}

impl Band {
    /// All modeled bands.
    pub const ALL: [Band; 8] = [
        Band::B2,
        Band::B4,
        Band::B5,
        Band::B7,
        Band::B12,
        Band::B13,
        Band::B66,
        Band::B71,
    ];

    /// (F_DL_low in MHz, N_Offs-DL, DL EARFCN range) per TS 36.101
    /// Table 5.7.3-1.
    fn plan(&self) -> (f64, u32, core::ops::RangeInclusive<u32>) {
        match self {
            Band::B2 => (1930.0, 600, 600..=1199),
            Band::B4 => (2110.0, 1950, 1950..=2399),
            Band::B5 => (869.0, 2400, 2400..=2649),
            Band::B7 => (2620.0, 2750, 2750..=3449),
            Band::B12 => (729.0, 5010, 5010..=5179),
            Band::B13 => (746.0, 5180, 5180..=5279),
            Band::B66 => (2110.0, 66436, 66436..=67335),
            Band::B71 => (617.0, 68586, 68586..=68935),
        }
    }

    /// Downlink carrier frequency (Hz) for a DL EARFCN in this band.
    ///
    /// `F_DL = F_DL_low + 0.1 MHz × (N_DL − N_Offs-DL)`; `None` if the
    /// EARFCN is outside the band's range.
    pub fn dl_freq_hz(&self, earfcn: u32) -> Option<f64> {
        let (f_low_mhz, n_offs, range) = self.plan();
        if !range.contains(&earfcn) {
            return None;
        }
        Some((f_low_mhz + 0.1 * (earfcn - n_offs) as f64) * 1e6)
    }

    /// The DL EARFCN in this band for a carrier frequency (Hz), if the
    /// frequency lies on the band's 100 kHz raster.
    pub fn earfcn_for_freq(&self, freq_hz: f64) -> Option<u32> {
        let (f_low_mhz, n_offs, range) = self.plan();
        let steps = (freq_hz / 1e6 - f_low_mhz) / 0.1;
        let n = steps.round();
        if (steps - n).abs() > 1e-6 || n < 0.0 {
            return None;
        }
        let earfcn = n_offs + n as u32;
        range.contains(&earfcn).then_some(earfcn)
    }

    /// Band containing the given DL EARFCN, if any.
    pub fn from_earfcn(earfcn: u32) -> Option<Band> {
        Band::ALL
            .into_iter()
            .find(|b| b.plan().2.contains(&earfcn))
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Band::B2 => "B2 (PCS 1900)",
            Band::B4 => "B4 (AWS-1)",
            Band::B5 => "B5 (850)",
            Band::B7 => "B7 (2600)",
            Band::B12 => "B12 (700 a/b/c)",
            Band::B13 => "B13 (700 c)",
            Band::B66 => "B66 (AWS-3)",
            Band::B71 => "B71 (600)",
        }
    }
}

/// Downlink frequency for an EARFCN, searching all modeled bands.
pub fn earfcn_to_dl_freq_hz(earfcn: u32) -> Option<f64> {
    Band::from_earfcn(earfcn).and_then(|b| b.dl_freq_hz(earfcn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_edges() {
        assert_eq!(Band::B2.dl_freq_hz(600), Some(1930.0e6));
        assert_eq!(Band::B12.dl_freq_hz(5010), Some(729.0e6));
        assert_eq!(Band::B71.dl_freq_hz(68586), Some(617.0e6));
    }

    #[test]
    fn paper_tower_frequencies_have_earfcns() {
        // 731 MHz → B12 EARFCN 5030; 1970 → B2 1000; 2145 → B4 2300;
        // 2660 → B7 3150; 2680 → B7 3350.
        assert_eq!(Band::B12.earfcn_for_freq(731e6), Some(5030));
        assert_eq!(Band::B2.earfcn_for_freq(1970e6), Some(1000));
        assert_eq!(Band::B4.earfcn_for_freq(2145e6), Some(2300));
        assert_eq!(Band::B7.earfcn_for_freq(2660e6), Some(3150));
        assert_eq!(Band::B7.earfcn_for_freq(2680e6), Some(3350));
    }

    #[test]
    fn round_trip_all_bands() {
        for b in Band::ALL {
            let (_, n_offs, range) = (b.plan().0, b.plan().1, b.plan().2);
            let _ = n_offs;
            for earfcn in [*range.start(), (*range.start() + *range.end()) / 2, *range.end()] {
                let f = b.dl_freq_hz(earfcn).unwrap();
                assert_eq!(b.earfcn_for_freq(f), Some(earfcn), "{b:?} {earfcn}");
                assert_eq!(Band::from_earfcn(earfcn), Some(b));
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Band::B2.dl_freq_hz(599), None);
        assert_eq!(Band::B2.dl_freq_hz(1200), None);
        assert_eq!(Band::B2.earfcn_for_freq(2800e6), None);
        // Off-raster frequency.
        assert_eq!(Band::B2.earfcn_for_freq(1930.05e6), None);
    }

    #[test]
    fn global_lookup() {
        assert_eq!(earfcn_to_dl_freq_hz(5030), Some(731e6));
        assert_eq!(earfcn_to_dl_freq_hz(9_999_999), None);
    }

    #[test]
    fn b4_b66_overlap_resolves_to_first_match() {
        // 2110–2155 MHz is valid in both B4 and B66; EARFCN spaces are
        // disjoint though, so lookups are unambiguous.
        assert_eq!(Band::from_earfcn(2000), Some(Band::B4));
        assert_eq!(Band::from_earfcn(66500), Some(Band::B66));
    }
}
