//! RF propagation models for the `aircal` simulation.
//!
//! The paper's physical testbed is replaced by these standard models; each
//! headline effect in the paper maps onto one of them:
//!
//! * open-sector ADS-B reception out to ~95 km — free-space path loss
//!   ([`pathloss`]) against the link budget ([`linkbudget`]);
//! * blocked sectors losing only *distant* aircraft — knife-edge diffraction
//!   ([`diffraction`]) and building penetration ([`materials`]), which add
//!   tens of dB, an amount close aircraft can absorb but distant ones cannot;
//! * short-range reception "regardless of direction, likely due to a
//!   combination of multipath reflections and penetrating walls" — Rician
//!   fading and wall losses ([`fading`], [`materials`]);
//! * 700 MHz cellular penetrating indoors while 2 GHz does not — the
//!   frequency-dependent material attenuation in [`materials`];
//! * the receiver sensitivity limit that turns weak signals into "missing
//!   bars" — thermal noise and noise figure in [`noise`].
//!
//! Conventions: frequencies in Hz, distances in meters, powers in dBm,
//! losses/gains in dB. All random processes draw from a caller-provided
//! seeded RNG; the models themselves are pure functions.

pub mod antenna;
pub mod diffraction;
pub mod empirical;
pub mod fading;
pub mod linkbudget;
pub mod materials;
pub mod noise;
pub mod pathloss;

pub use antenna::AntennaPattern;
pub use diffraction::knife_edge_loss_db;
pub use fading::{RicianFading, Shadowing};
pub use linkbudget::{LinkBudget, PathProfile};
pub use materials::Material;
pub use noise::{noise_floor_dbm, snr_db};
pub use pathloss::{free_space_path_loss_db, log_distance_path_loss_db};

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Wavelength in meters for a frequency in Hz.
pub fn wavelength_m(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}
