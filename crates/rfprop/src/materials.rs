//! Frequency-dependent building-material attenuation.
//!
//! The paper's Figure 3 hinges on exactly this physics: "700 MHz signals
//! can penetrate buildings much better than mid-band signals from towers 2
//! through 5, although the difference varies based on building materials."
//!
//! Loss values follow the linear-in-frequency models of ITU-R P.2040-1 /
//! 3GPP TR 38.901 §7.4.3 (O2I penetration): each material contributes
//! `a + b·f_GHz` dB per traversal of a standard-thickness element.

use serde::{Deserialize, Serialize};

/// Common building materials, with standard-element penetration loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Standard (non-coated) glass: nearly transparent at low GHz.
    Glass,
    /// Infrared-reflective (low-emissivity) glass: surprisingly lossy.
    IrrGlass,
    /// Concrete wall.
    Concrete,
    /// Brick wall.
    Brick,
    /// Interior drywall / plasterboard.
    Drywall,
    /// Wood panel / door.
    Wood,
    /// Sheet metal (roof deck, HVAC): essentially opaque.
    Metal,
}

impl Material {
    /// Penetration loss in dB through one standard-thickness element at the
    /// given frequency.
    ///
    /// Coefficients from ITU-R P.2040-1 Table 3 / 3GPP TR 38.901 Table
    /// 7.4.3-1 (`L = a + b·f_GHz`), clamped below at 0 dB.
    pub fn penetration_loss_db(&self, freq_hz: f64) -> f64 {
        let f_ghz = (freq_hz / 1e9).max(0.0);
        let (a, b) = match self {
            Material::Glass => (2.0, 0.2),
            Material::IrrGlass => (23.0, 0.3),
            Material::Concrete => (5.0, 4.0),
            Material::Brick => (6.0, 2.5),
            Material::Drywall => (2.0, 1.2),
            Material::Wood => (4.85, 0.12),
            Material::Metal => (50.0, 1.0),
        };
        (a + b * f_ghz).max(0.0)
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Material::Glass => "glass",
            Material::IrrGlass => "IRR glass",
            Material::Concrete => "concrete",
            Material::Brick => "brick",
            Material::Drywall => "drywall",
            Material::Wood => "wood",
            Material::Metal => "metal",
        }
    }
}

/// Total penetration loss of a path crossing a sequence of materials
/// (e.g. an indoor sensor behind glass + two drywall partitions).
pub fn stack_loss_db(materials: &[Material], freq_hz: f64) -> f64 {
    materials
        .iter()
        .map(|m| m.penetration_loss_db(freq_hz))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_blocks_more_at_higher_frequency() {
        // The paper's tower-1-vs-towers-2..5 effect.
        let low = Material::Concrete.penetration_loss_db(731e6);
        let mid = Material::Concrete.penetration_loss_db(2.145e9);
        assert!(low < mid, "{low} !< {mid}");
        assert!(mid - low > 4.0, "frequency effect too small: {}", mid - low);
    }

    #[test]
    fn glass_mild_metal_severe() {
        let f = 1.09e9;
        assert!(Material::Glass.penetration_loss_db(f) < 4.0);
        assert!(Material::Metal.penetration_loss_db(f) > 45.0);
    }

    #[test]
    fn irr_glass_much_worse_than_plain() {
        let f = 2e9;
        let plain = Material::Glass.penetration_loss_db(f);
        let irr = Material::IrrGlass.penetration_loss_db(f);
        assert!(irr > plain + 15.0);
    }

    #[test]
    fn stack_adds_losses() {
        let f = 731e6;
        let stack = [Material::Glass, Material::Drywall, Material::Drywall];
        let total = stack_loss_db(&stack, f);
        let by_hand: f64 = stack.iter().map(|m| m.penetration_loss_db(f)).sum();
        assert!((total - by_hand).abs() < 1e-12);
        assert_eq!(stack_loss_db(&[], f), 0.0);
    }

    #[test]
    fn loss_never_negative() {
        for m in [
            Material::Glass,
            Material::IrrGlass,
            Material::Concrete,
            Material::Brick,
            Material::Drywall,
            Material::Wood,
            Material::Metal,
        ] {
            for f in [85e6, 731e6, 1.09e9, 2.68e9, 6e9, 28e9] {
                assert!(m.penetration_loss_db(f) >= 0.0, "{m:?} at {f}");
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            Material::Glass,
            Material::IrrGlass,
            Material::Concrete,
            Material::Brick,
            Material::Drywall,
            Material::Wood,
            Material::Metal,
        ]
        .iter()
        .map(|m| m.name())
        .collect();
        assert_eq!(names.len(), 7);
    }
}
