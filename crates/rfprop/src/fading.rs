//! Stochastic channel components: log-normal shadowing and Rician fading.
//!
//! These supply the variability that makes the paper's plots look the way
//! they do: receptions near the edge of a blocked sector are hit-or-miss,
//! and close-in aircraft are received "regardless of direction, likely due
//! to a combination of multipath reflections and penetrating walls" — i.e.
//! a strong diffuse component when the direct ray is blocked.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Log-normal shadowing: a zero-mean Gaussian in the dB domain.
#[derive(Debug, Clone, Copy)]
pub struct Shadowing {
    /// Standard deviation in dB (typical: 4–8 outdoor, 7–12 indoor).
    pub sigma_db: f64,
}

impl Shadowing {
    /// Create a shadowing process with the given σ (clamped at 0).
    pub fn new(sigma_db: f64) -> Self {
        Self {
            sigma_db: sigma_db.max(0.0),
        }
    }

    /// Draw one shadowing realization in dB (positive = extra loss).
    pub fn sample_db(&self, rng: &mut ChaCha8Rng) -> f64 {
        gaussian(rng) * self.sigma_db
    }
}

/// Rician fading: a dominant (line-of-sight) component plus diffuse
/// multipath, parameterized by the K-factor (power ratio of the two).
///
/// `K → ∞` is a pure LOS channel (no fading); `K = 0` degenerates to
/// Rayleigh (no dominant path) — the regime behind a blocking wall.
#[derive(Debug, Clone, Copy)]
pub struct RicianFading {
    /// K-factor as a linear power ratio (not dB).
    pub k_linear: f64,
}

impl RicianFading {
    /// From a K-factor in dB.
    pub fn from_k_db(k_db: f64) -> Self {
        Self {
            k_linear: 10f64.powf(k_db / 10.0),
        }
    }

    /// Rayleigh fading (K = 0).
    pub fn rayleigh() -> Self {
        Self { k_linear: 0.0 }
    }

    /// Draw one fading power gain (linear, mean 1.0). Multiply the received
    /// *power* by this; in dB it is `10·log₁₀(gain)`.
    pub fn sample_power_gain(&self, rng: &mut ChaCha8Rng) -> f64 {
        let k = self.k_linear.max(0.0);
        // Complex envelope: sqrt(K/(K+1)) LOS + sqrt(1/(K+1)) CN(0,1).
        let los = (k / (k + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
        let re = los + sigma * gaussian(rng);
        let im = sigma * gaussian(rng);
        re * re + im * im
    }

    /// Fading margin in dB exceeded with probability `p` (by Monte Carlo
    /// over `n` draws; used for link-budget headroom estimates in tests).
    pub fn outage_margin_db(&self, p: f64, n: usize, rng: &mut ChaCha8Rng) -> f64 {
        let mut gains: Vec<f64> = (0..n.max(1)).map(|_| self.sample_power_gain(rng)).collect();
        gains.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p.clamp(0.0, 1.0)) * (gains.len() - 1) as f64).round() as usize;
        -10.0 * gains[idx].max(1e-12).log10()
    }
}

/// Standard normal draw via Box–Muller (ChaCha8 gives uniform f64s).
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn shadowing_zero_sigma_is_deterministic() {
        let s = Shadowing::new(0.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(s.sample_db(&mut r), 0.0);
        }
    }

    #[test]
    fn shadowing_statistics() {
        let s = Shadowing::new(6.0);
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample_db(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.2, "sigma {}", var.sqrt());
    }

    #[test]
    fn rician_mean_power_is_unity() {
        for k_db in [-10.0, 0.0, 6.0, 12.0] {
            let f = RicianFading::from_k_db(k_db);
            let mut r = rng();
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| f.sample_power_gain(&mut r)).sum::<f64>() / n as f64;
            assert!((mean - 1.0).abs() < 0.03, "K={k_db} dB: mean {mean}");
        }
    }

    #[test]
    fn high_k_fades_less_than_rayleigh() {
        let mut r1 = rng();
        let mut r2 = rng();
        let strong_los = RicianFading::from_k_db(12.0);
        let rayleigh = RicianFading::rayleigh();
        let var = |f: &RicianFading, r: &mut ChaCha8Rng| {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| f.sample_power_gain(r)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var(&strong_los, &mut r1) < var(&rayleigh, &mut r2) / 3.0);
    }

    #[test]
    fn rayleigh_deep_fade_probability() {
        // P(gain < 0.1) for Rayleigh power is 1 - e^{-0.1} ≈ 0.095.
        let f = RicianFading::rayleigh();
        let mut r = rng();
        let n = 50_000;
        let deep = (0..n)
            .filter(|_| f.sample_power_gain(&mut r) < 0.1)
            .count() as f64
            / n as f64;
        assert!((deep - 0.095).abs() < 0.01, "got {deep}");
    }

    #[test]
    fn outage_margin_larger_for_rayleigh() {
        let mut r1 = rng();
        let mut r2 = rng();
        let ray = RicianFading::rayleigh().outage_margin_db(0.05, 20_000, &mut r1);
        let los = RicianFading::from_k_db(12.0).outage_margin_db(0.05, 20_000, &mut r2);
        assert!(ray > los + 5.0, "rayleigh {ray} vs LOS {los}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let f = RicianFading::from_k_db(3.0);
        let a: Vec<f64> = {
            let mut r = rng();
            (0..8).map(|_| f.sample_power_gain(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..8).map(|_| f.sample_power_gain(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
