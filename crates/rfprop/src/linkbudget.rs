//! Link-budget composition.
//!
//! A link budget strings the pieces together:
//!
//! ```text
//! P_rx = P_tx + G_tx + G_rx − L_path − L_diffraction − L_penetration
//!        − L_misc + X_shadow + 10·log₁₀(fading gain)
//! ```
//!
//! [`PathProfile`] carries everything the environment model knows about one
//! emitter→sensor path; [`LinkBudget`] folds it into a received power.

use crate::fading::{RicianFading, Shadowing};
use crate::pathloss::free_space_path_loss_db;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Everything known about one propagation path, produced by the
/// environment model and consumed by the link budget.
///
/// `Copy` (seven `f64`s) so the propagation memo cache can hand profiles
/// back by value.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathProfile {
    /// 3-D (slant) distance, meters.
    pub distance_m: f64,
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
    /// Diffraction loss over blocking edges, dB.
    pub diffraction_db: f64,
    /// Material penetration loss (walls/windows crossed), dB.
    pub penetration_db: f64,
    /// Any other fixed excess loss (cable faults, vegetation…), dB.
    pub excess_db: f64,
    /// Rician K-factor for this path, dB. Large for clear LOS; ~0
    /// (Rayleigh-like) when the direct ray is blocked and energy arrives by
    /// multipath.
    pub k_factor_db: f64,
    /// Log-normal shadowing σ for this path, dB.
    pub shadowing_sigma_db: f64,
}

impl PathProfile {
    /// An unobstructed line-of-sight path.
    pub fn line_of_sight(distance_m: f64, freq_hz: f64) -> Self {
        Self {
            distance_m,
            freq_hz,
            diffraction_db: 0.0,
            penetration_db: 0.0,
            excess_db: 0.0,
            k_factor_db: 12.0,
            shadowing_sigma_db: 2.0,
        }
    }

    /// Is the direct ray meaningfully obstructed (≥ 3 dB of excess loss)?
    pub fn is_obstructed(&self) -> bool {
        self.diffraction_db + self.penetration_db >= 3.0
    }

    /// Total deterministic loss along the path, dB.
    pub fn total_loss_db(&self) -> f64 {
        free_space_path_loss_db(self.distance_m, self.freq_hz)
            + self.diffraction_db
            + self.penetration_db
            + self.excess_db
    }
}

/// Transmit-side and receive-side parameters of a link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Transmit antenna gain toward the receiver, dBi.
    pub tx_gain_dbi: f64,
    /// Receive antenna gain toward the transmitter, dBi.
    pub rx_gain_dbi: f64,
}

impl LinkBudget {
    /// Construct a link budget.
    pub fn new(tx_power_dbm: f64, tx_gain_dbi: f64, rx_gain_dbi: f64) -> Self {
        Self {
            tx_power_dbm,
            tx_gain_dbi,
            rx_gain_dbi,
        }
    }

    /// Effective isotropic radiated power, dBm.
    pub fn eirp_dbm(&self) -> f64 {
        self.tx_power_dbm + self.tx_gain_dbi
    }

    /// Median received power over the path (no fading/shadowing draw), dBm.
    pub fn median_rx_dbm(&self, path: &PathProfile) -> f64 {
        self.eirp_dbm() + self.rx_gain_dbi - path.total_loss_db()
    }

    /// One stochastic realization of the received power, dBm: median plus a
    /// shadowing draw plus a Rician fading draw.
    pub fn sample_rx_dbm(&self, path: &PathProfile, rng: &mut ChaCha8Rng) -> f64 {
        let median = self.median_rx_dbm(path);
        let shadow = Shadowing::new(path.shadowing_sigma_db).sample_db(rng);
        let fade = RicianFading::from_k_db(path.k_factor_db).sample_power_gain(rng);
        median - shadow + 10.0 * fade.max(1e-12).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    /// The paper's headline ADS-B case: a 250 W transponder at 95 km LOS
    /// must be comfortably decodable; the same aircraft behind a deep
    /// obstruction must not be.
    #[test]
    fn adsb_at_95_km_is_decodable_when_clear() {
        let budget = LinkBudget::new(54.0, 0.0, 2.0); // 250 W, whip antenna
        let clear = PathProfile::line_of_sight(95_000.0, 1.09e9);
        let rx = budget.median_rx_dbm(&clear);
        let floor = crate::noise::noise_floor_dbm(2e6, 7.0);
        assert!(rx - floor > 15.0, "SNR only {} dB", rx - floor);

        let mut blocked = clear;
        blocked.diffraction_db = 25.0;
        blocked.penetration_db = 15.0;
        let rx_b = budget.median_rx_dbm(&blocked);
        assert!(rx_b - floor < 0.0, "blocked SNR {} dB", rx_b - floor);
    }

    /// A nearby aircraft (15 km) survives the same obstruction — the
    /// mechanism behind the paper's "within 20 km … regardless of
    /// direction" observation.
    #[test]
    fn close_aircraft_survives_obstruction() {
        let budget = LinkBudget::new(54.0, 0.0, 2.0);
        let mut path = PathProfile::line_of_sight(15_000.0, 1.09e9);
        path.diffraction_db = 25.0;
        path.penetration_db = 15.0;
        let floor = crate::noise::noise_floor_dbm(2e6, 7.0);
        let rx = budget.median_rx_dbm(&path);
        assert!(rx - floor > 0.0, "close SNR {} dB", rx - floor);
    }

    #[test]
    fn eirp_and_gains_add() {
        let b = LinkBudget::new(30.0, 17.0, 2.0);
        assert_eq!(b.eirp_dbm(), 47.0);
        let p = PathProfile::line_of_sight(1_000.0, 2e9);
        let with_gain = b.median_rx_dbm(&p);
        let without = LinkBudget::new(30.0, 0.0, 0.0).median_rx_dbm(&p);
        assert!((with_gain - without - 19.0).abs() < 1e-9);
    }

    #[test]
    fn obstruction_flag() {
        let mut p = PathProfile::line_of_sight(100.0, 1e9);
        assert!(!p.is_obstructed());
        p.penetration_db = 2.0;
        assert!(!p.is_obstructed());
        p.diffraction_db = 1.5;
        assert!(p.is_obstructed());
    }

    #[test]
    fn sampled_power_scatter_around_median() {
        let b = LinkBudget::new(40.0, 0.0, 0.0);
        let p = PathProfile::line_of_sight(10_000.0, 1e9);
        let median = b.median_rx_dbm(&p);
        let mut r = rng();
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| b.sample_rx_dbm(&p, &mut r)).sum::<f64>() / n as f64;
        // LOS path: fading is mild, mean within a couple of dB of median.
        assert!((mean - median).abs() < 2.0, "median {median}, mean {mean}");
    }

    #[test]
    fn deterministic_same_seed() {
        let b = LinkBudget::new(40.0, 0.0, 0.0);
        let p = PathProfile::line_of_sight(5_000.0, 1e9);
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..16 {
            assert_eq!(b.sample_rx_dbm(&p, &mut r1), b.sample_rx_dbm(&p, &mut r2));
        }
    }
}
