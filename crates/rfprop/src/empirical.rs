//! Empirical macro-cell path-loss models: Okumura-Hata and COST-231 Hata,
//! plus ITU-R P.838-style rain attenuation for millimeter wave.
//!
//! The geometric models in [`crate::pathloss`] plus explicit buildings
//! describe the near field around a site. For *city-scale* links (the
//! 40 km low-band cellular coverage the paper quotes, or TV at 50 km),
//! decades of drive tests are baked into these empirical fits; the
//! ablation benches use them as an alternative channel to show the
//! calibration conclusions do not hinge on the free-space assumption.

/// Environment class for the Hata family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HataEnvironment {
    /// Dense urban (large city).
    Urban,
    /// Suburban.
    Suburban,
    /// Open / rural.
    Open,
}

/// Okumura-Hata path loss, dB.
///
/// Valid ranges per the original fit: f 150–1500 MHz, base height 30–200 m,
/// mobile height 1–10 m, distance 1–20 km. Inputs are clamped into those
/// ranges (callers probing outside get the boundary value, documented
/// behaviour for a fit).
pub fn okumura_hata_db(
    freq_hz: f64,
    distance_m: f64,
    base_height_m: f64,
    mobile_height_m: f64,
    env: HataEnvironment,
) -> f64 {
    let f = (freq_hz / 1e6).clamp(150.0, 1500.0);
    let d = (distance_m / 1000.0).clamp(1.0, 20.0);
    let hb = base_height_m.clamp(30.0, 200.0);
    let hm = mobile_height_m.clamp(1.0, 10.0);

    // Mobile antenna correction for a medium/small city.
    let a_hm = (1.1 * f.log10() - 0.7) * hm - (1.56 * f.log10() - 0.8);
    let urban = 69.55 + 26.16 * f.log10() - 13.82 * hb.log10() - a_hm
        + (44.9 - 6.55 * hb.log10()) * d.log10();
    match env {
        HataEnvironment::Urban => urban,
        HataEnvironment::Suburban => {
            urban - 2.0 * (f / 28.0).log10().powi(2) - 5.4
        }
        HataEnvironment::Open => {
            urban - 4.78 * f.log10().powi(2) + 18.33 * f.log10() - 40.94
        }
    }
}

/// COST-231 Hata extension (1500–2000 MHz), dB. Same clamping policy.
pub fn cost231_hata_db(
    freq_hz: f64,
    distance_m: f64,
    base_height_m: f64,
    mobile_height_m: f64,
    dense_urban: bool,
) -> f64 {
    let f = (freq_hz / 1e6).clamp(1500.0, 2000.0);
    let d = (distance_m / 1000.0).clamp(1.0, 20.0);
    let hb = base_height_m.clamp(30.0, 200.0);
    let hm = mobile_height_m.clamp(1.0, 10.0);
    let a_hm = (1.1 * f.log10() - 0.7) * hm - (1.56 * f.log10() - 0.8);
    let c_m = if dense_urban { 3.0 } else { 0.0 };
    46.3 + 33.9 * f.log10() - 13.82 * hb.log10() - a_hm
        + (44.9 - 6.55 * hb.log10()) * d.log10()
        + c_m
}

/// Specific rain attenuation γ = k·R^α in dB/km (ITU-R P.838 power-law
/// with coefficients interpolated over our frequency range of interest,
/// horizontal polarization).
pub fn rain_specific_attenuation_db_per_km(freq_hz: f64, rain_rate_mm_h: f64) -> f64 {
    let f_ghz = (freq_hz / 1e9).clamp(1.0, 100.0);
    // Log-log interpolation over P.838 anchor points (k, α).
    const ANCHORS: [(f64, f64, f64); 7] = [
        (1.0, 0.0000387, 0.912),
        (4.0, 0.00065, 1.121),
        (10.0, 0.01217, 1.2571),
        (20.0, 0.09164, 1.0568),
        (30.0, 0.2403, 0.9485),
        (60.0, 0.8606, 0.7656),
        (100.0, 1.3671, 0.6815),
    ];
    let mut k = ANCHORS[0].1;
    let mut alpha = ANCHORS[0].2;
    for w in ANCHORS.windows(2) {
        let (f0, k0, a0) = w[0];
        let (f1, k1, a1) = w[1];
        if f_ghz >= f0 && f_ghz <= f1 {
            let t = (f_ghz.ln() - f0.ln()) / (f1.ln() - f0.ln());
            k = (k0.ln() + t * (k1.ln() - k0.ln())).exp();
            alpha = a0 + t * (a1 - a0);
            break;
        }
        k = k1;
        alpha = a1;
    }
    k * rain_rate_mm_h.max(0.0).powf(alpha)
}

/// Total rain loss over a path, dB.
pub fn rain_loss_db(freq_hz: f64, rain_rate_mm_h: f64, path_length_m: f64) -> f64 {
    rain_specific_attenuation_db_per_km(freq_hz, rain_rate_mm_h) * (path_length_m / 1000.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::free_space_path_loss_db;
    use proptest::prelude::*;

    #[test]
    fn hata_urban_reference_value() {
        // Hand-computed from the formula: 900 MHz, 5 km, hb 50 m,
        // hm 1.5 m, urban → 146.9 dB.
        let pl = okumura_hata_db(900e6, 5_000.0, 50.0, 1.5, HataEnvironment::Urban);
        assert!((pl - 146.94).abs() < 0.1, "got {pl}");
    }

    #[test]
    fn hata_exceeds_free_space() {
        // Clutter always costs more than vacuum.
        for d in [1_000.0, 5_000.0, 15_000.0] {
            let hata = okumura_hata_db(900e6, d, 30.0, 1.5, HataEnvironment::Urban);
            let fspl = free_space_path_loss_db(d, 900e6);
            assert!(hata > fspl + 10.0, "at {d} m: hata {hata} vs fspl {fspl}");
        }
    }

    #[test]
    fn environment_ordering() {
        let args = (900e6, 8_000.0, 40.0, 1.5);
        let urban = okumura_hata_db(args.0, args.1, args.2, args.3, HataEnvironment::Urban);
        let suburban = okumura_hata_db(args.0, args.1, args.2, args.3, HataEnvironment::Suburban);
        let open = okumura_hata_db(args.0, args.1, args.2, args.3, HataEnvironment::Open);
        assert!(urban > suburban && suburban > open, "{urban} {suburban} {open}");
    }

    #[test]
    fn cost231_continues_hata_scale() {
        // At the 1500 MHz seam the two fits agree within a few dB.
        let hata = okumura_hata_db(1_500e6, 5_000.0, 40.0, 1.5, HataEnvironment::Urban);
        let cost = cost231_hata_db(1_500e6, 5_000.0, 40.0, 1.5, false);
        assert!((hata - cost).abs() < 6.0, "hata {hata} vs cost231 {cost}");
    }

    #[test]
    fn taller_base_station_helps() {
        let low = okumura_hata_db(900e6, 10_000.0, 30.0, 1.5, HataEnvironment::Urban);
        let high = okumura_hata_db(900e6, 10_000.0, 150.0, 1.5, HataEnvironment::Urban);
        assert!(high < low - 5.0);
    }

    #[test]
    fn rain_reference_points() {
        // 28 GHz at 25 mm/h (heavy rain) ≈ 4–6 dB/km — the classic mmWave
        // planning number.
        let g = rain_specific_attenuation_db_per_km(28e9, 25.0);
        assert!((3.0..=7.0).contains(&g), "got {g}");
        // 1 GHz: rain is irrelevant (< 0.01 dB/km).
        assert!(rain_specific_attenuation_db_per_km(1e9, 25.0) < 0.01);
    }

    #[test]
    fn rain_loss_scales_with_path() {
        let a = rain_loss_db(28e9, 25.0, 1_000.0);
        let b = rain_loss_db(28e9, 25.0, 3_000.0);
        assert!((b / a - 3.0).abs() < 1e-9);
        assert_eq!(rain_loss_db(28e9, 0.0, 5_000.0), 0.0);
    }

    proptest! {
        /// Rain attenuation is monotone in both rate and frequency over
        /// the modeled range.
        #[test]
        fn rain_monotone(f1 in 1e9f64..95e9, r1 in 0.1f64..100.0, r2 in 0.1f64..100.0) {
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(
                rain_specific_attenuation_db_per_km(f1, lo)
                    <= rain_specific_attenuation_db_per_km(f1, hi) + 1e-12
            );
        }

        /// Hata is monotone in distance (inside the clamp window).
        #[test]
        fn hata_monotone_distance(d1 in 1_000.0f64..20_000.0, d2 in 1_000.0f64..20_000.0) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let a = okumura_hata_db(900e6, lo, 40.0, 1.5, HataEnvironment::Urban);
            let b = okumura_hata_db(900e6, hi, 40.0, 1.5, HataEnvironment::Urban);
            prop_assert!(a <= b + 1e-9);
        }
    }
}
