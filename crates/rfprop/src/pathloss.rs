//! Deterministic path-loss models.

use crate::SPEED_OF_LIGHT;

/// Free-space path loss in dB (Friis) for a distance in meters and
/// frequency in Hz.
///
/// Distances below one wavelength are clamped to one wavelength: the Friis
/// far-field formula is meaningless closer than that, and clamping keeps
/// the function total and monotone.
pub fn free_space_path_loss_db(distance_m: f64, freq_hz: f64) -> f64 {
    let wavelength = SPEED_OF_LIGHT / freq_hz;
    let d = distance_m.max(wavelength);
    20.0 * (4.0 * core::f64::consts::PI * d / wavelength).log10()
}

/// Log-distance path loss: FSPL up to `reference_m`, then `10·n·log₁₀(d/d₀)`
/// beyond it with path-loss exponent `n`.
///
/// `n = 2` reduces exactly to free space; urban macro links typically use
/// 2.7–3.5; heavily cluttered/indoor links 4–6.
pub fn log_distance_path_loss_db(
    distance_m: f64,
    freq_hz: f64,
    reference_m: f64,
    exponent: f64,
) -> f64 {
    let d0 = reference_m.max(1e-3);
    let pl0 = free_space_path_loss_db(d0, freq_hz);
    let d = distance_m.max(d0);
    pl0 + 10.0 * exponent * (d / d0).log10()
}

/// Two-ray ground-reflection model.
///
/// Below the crossover distance `d_c = 4·π·h_t·h_r/λ` this returns FSPL;
/// beyond it, the classic `40log₁₀d − 20log₁₀(h_t·h_r)` law. Antenna
/// heights in meters.
pub fn two_ray_path_loss_db(distance_m: f64, freq_hz: f64, h_tx_m: f64, h_rx_m: f64) -> f64 {
    let wavelength = SPEED_OF_LIGHT / freq_hz;
    let crossover = 4.0 * core::f64::consts::PI * h_tx_m * h_rx_m / wavelength;
    if distance_m <= crossover || crossover <= 0.0 {
        free_space_path_loss_db(distance_m, freq_hz)
    } else {
        40.0 * distance_m.log10() - 20.0 * (h_tx_m * h_rx_m).log10()
    }
}

/// Radio horizon distance in meters for antenna heights in meters, using
/// the 4/3-earth effective radius that accounts for standard atmospheric
/// refraction. Beyond this, a ground-to-air link loses line of sight.
pub fn radio_horizon_m(h_tx_m: f64, h_rx_m: f64) -> f64 {
    const K_EARTH_RADIUS_M: f64 = 6_371_008.8 * 4.0 / 3.0;
    let d = |h: f64| (2.0 * K_EARTH_RADIUS_M * h.max(0.0)).sqrt();
    d(h_tx_m) + d(h_rx_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fspl_known_value_adsb() {
        // 1090 MHz at 95 km (the paper's longest rooftop reception):
        // 32.45 + 20log10(95) + 20log10(1090) ≈ 132.8 dB.
        let pl = free_space_path_loss_db(95_000.0, 1.09e9);
        assert!((pl - 132.75).abs() < 0.2, "got {pl}");
    }

    #[test]
    fn fspl_known_value_wifi() {
        // Classic textbook value: 2.4 GHz at 100 m ≈ 80.1 dB.
        let pl = free_space_path_loss_db(100.0, 2.4e9);
        assert!((pl - 80.1).abs() < 0.3, "got {pl}");
    }

    #[test]
    fn fspl_clamps_near_field() {
        let pl_zero = free_space_path_loss_db(0.0, 1e9);
        let pl_tiny = free_space_path_loss_db(1e-9, 1e9);
        assert!(pl_zero.is_finite() && pl_tiny.is_finite());
        // One wavelength of FSPL is 20log10(4π) ≈ 22 dB.
        assert!((pl_zero - 21.98).abs() < 0.1);
    }

    #[test]
    fn log_distance_reduces_to_fspl_at_exponent_two() {
        for d in [10.0, 100.0, 10_000.0] {
            let a = log_distance_path_loss_db(d, 900e6, 1.0, 2.0);
            let b = free_space_path_loss_db(d, 900e6);
            assert!((a - b).abs() < 0.01, "at {d} m: {a} vs {b}");
        }
    }

    #[test]
    fn higher_exponent_means_more_loss() {
        let d = 1_000.0;
        let n2 = log_distance_path_loss_db(d, 2e9, 10.0, 2.0);
        let n35 = log_distance_path_loss_db(d, 2e9, 10.0, 3.5);
        assert!(n35 > n2 + 25.0, "n2 {n2}, n3.5 {n35}");
    }

    #[test]
    fn two_ray_matches_fspl_close_in() {
        let pl_tr = two_ray_path_loss_db(100.0, 900e6, 30.0, 2.0);
        let pl_fs = free_space_path_loss_db(100.0, 900e6);
        assert!((pl_tr - pl_fs).abs() < 1e-9);
    }

    #[test]
    fn two_ray_steeper_far_out() {
        // Far beyond crossover, doubling distance adds ~12 dB (not 6).
        let f = 900e6;
        let d1 = two_ray_path_loss_db(20_000.0, f, 30.0, 2.0);
        let d2 = two_ray_path_loss_db(40_000.0, f, 30.0, 2.0);
        assert!((d2 - d1 - 12.04).abs() < 0.1, "delta {}", d2 - d1);
    }

    #[test]
    fn radio_horizon_airliner() {
        // A 10 km-altitude aircraft is visible ~412 km away (4/3 earth)
        // from the ground — far beyond the paper's 100 km disc, so the
        // horizon never limits the simulated surveys.
        let d = radio_horizon_m(10_000.0, 10.0);
        assert!(d > 380_000.0 && d < 450_000.0, "horizon {d}");
    }

    proptest! {
        /// FSPL is monotonically non-decreasing in distance.
        #[test]
        fn fspl_monotone_distance(d1 in 1.0f64..1e6, d2 in 1.0f64..1e6, f in 1e8f64..1e10) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(free_space_path_loss_db(lo, f) <= free_space_path_loss_db(hi, f) + 1e-9);
        }

        /// FSPL increases 6.02 dB per distance doubling in the far field.
        #[test]
        fn fspl_inverse_square(d in 10.0f64..1e5, f in 1e8f64..1e10) {
            let a = free_space_path_loss_db(d, f);
            let b = free_space_path_loss_db(2.0 * d, f);
            prop_assert!((b - a - 6.0206).abs() < 1e-6);
        }

        /// Higher frequency always loses at least as much (fixed distance).
        #[test]
        fn fspl_monotone_frequency(d in 1.0f64..1e5, f1 in 1e8f64..1e10, f2 in 1e8f64..1e10) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(free_space_path_loss_db(d, lo) <= free_space_path_loss_db(d, hi) + 1e-9);
        }
    }
}
