//! Thermal noise and SNR.
//!
//! The receiver's noise floor is what converts "attenuated" into "missing
//! bar": a signal below the demodulator's required SNR produces no
//! measurement at all (srsUE fails to synchronize; dump1090 fails CRC).

/// Boltzmann's constant times the standard temperature (290 K), expressed
/// as noise power density: −174 dBm/Hz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -173.975;

/// Thermal noise floor in dBm for a bandwidth in Hz and receiver noise
/// figure in dB.
pub fn noise_floor_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    THERMAL_NOISE_DBM_PER_HZ + 10.0 * bandwidth_hz.max(1.0).log10() + noise_figure_db.max(0.0)
}

/// Signal-to-noise ratio in dB from a received power and noise floor.
pub fn snr_db(rx_power_dbm: f64, noise_floor_dbm: f64) -> f64 {
    rx_power_dbm - noise_floor_dbm
}

/// Receiver sensitivity in dBm: the weakest signal that still achieves the
/// required SNR.
pub fn sensitivity_dbm(bandwidth_hz: f64, noise_figure_db: f64, required_snr_db: f64) -> f64 {
    noise_floor_dbm(bandwidth_hz, noise_figure_db) + required_snr_db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adsb_noise_floor() {
        // 2 MHz bandwidth, 7 dB NF: −174 + 63 + 7 ≈ −104 dBm.
        let nf = noise_floor_dbm(2e6, 7.0);
        assert!((nf - (-104.0)).abs() < 0.5, "got {nf}");
    }

    #[test]
    fn lte_resource_block_floor() {
        // 180 kHz RB, 7 dB NF ≈ −114.4 dBm — the usual LTE RSRP reference.
        let nf = noise_floor_dbm(180e3, 7.0);
        assert!((nf - (-114.4)).abs() < 0.5, "got {nf}");
    }

    #[test]
    fn snr_is_a_difference() {
        assert_eq!(snr_db(-80.0, -104.0), 24.0);
        assert_eq!(snr_db(-110.0, -104.0), -6.0);
    }

    #[test]
    fn sensitivity_combines() {
        let s = sensitivity_dbm(2e6, 7.0, 10.0);
        let nf = noise_floor_dbm(2e6, 7.0);
        assert!((s - (nf + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_bandwidth_clamped() {
        assert!(noise_floor_dbm(0.0, 5.0).is_finite());
        assert!(noise_floor_dbm(-10.0, 5.0).is_finite());
    }
}
