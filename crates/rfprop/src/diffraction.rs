//! Single knife-edge diffraction (ITU-R P.526 approximation).
//!
//! When a rooftop parapet or neighboring building blocks the direct ray,
//! energy still arrives by diffraction over the edge. The loss depends on
//! the dimensionless Fresnel parameter `v`: barely-grazing edges cost ~6 dB,
//! deep shadow tens of dB. This is what makes the paper's blocked sectors
//! lose distant aircraft while nearby ones (larger subtended angles, smaller
//! `v`) survive.

use crate::wavelength_m;

/// Knife-edge diffraction loss in dB from the Fresnel parameter `v`, using
/// the ITU-R P.526 approximation
/// `J(v) = 6.9 + 20·log₁₀(√((v−0.1)² + 1) + v − 0.1)` for `v > −0.78`,
/// and 0 dB below that (unobstructed).
pub fn knife_edge_loss_from_v_db(v: f64) -> f64 {
    if v <= -0.78 {
        return 0.0;
    }
    let t = v - 0.1;
    6.9 + 20.0 * ((t * t + 1.0).sqrt() + t).log10()
}

/// Fresnel parameter for an edge `h` meters above (positive) or below
/// (negative) the direct ray, with distances `d1`/`d2` in meters from each
/// terminal to the edge.
pub fn fresnel_v(h_m: f64, d1_m: f64, d2_m: f64, freq_hz: f64) -> f64 {
    let wavelength = wavelength_m(freq_hz);
    let d1 = d1_m.max(1e-3);
    let d2 = d2_m.max(1e-3);
    h_m * (2.0 * (d1 + d2) / (wavelength * d1 * d2)).sqrt()
}

/// Convenience: knife-edge loss in dB given edge clearance geometry.
///
/// `h_m > 0` means the edge protrudes above the direct ray (shadowed);
/// `h_m < 0` means the ray clears the edge.
pub fn knife_edge_loss_db(h_m: f64, d1_m: f64, d2_m: f64, freq_hz: f64) -> f64 {
    knife_edge_loss_from_v_db(fresnel_v(h_m, d1_m, d2_m, freq_hz))
}

/// Radius of the first Fresnel zone at a point `d1`/`d2` meters from the
/// terminals.
pub fn fresnel_zone_radius_m(d1_m: f64, d2_m: f64, freq_hz: f64) -> f64 {
    let wavelength = wavelength_m(freq_hz);
    (wavelength * d1_m * d2_m / (d1_m + d2_m)).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unobstructed_path_no_loss() {
        assert_eq!(knife_edge_loss_from_v_db(-1.0), 0.0);
        assert_eq!(knife_edge_loss_from_v_db(-5.0), 0.0);
    }

    #[test]
    fn grazing_incidence_is_about_six_db() {
        // v = 0 (edge exactly on the ray): J(0) ≈ 6.0 dB.
        let loss = knife_edge_loss_from_v_db(0.0);
        assert!((loss - 6.0).abs() < 0.1, "got {loss}");
    }

    #[test]
    fn deep_shadow_large_loss() {
        // v = 2.4 → ~20.5 dB under the P.526 approximation (the exact
        // Fresnel-integral value is ~21.7; the approximation is spec'd to
        // within ~1.5 dB).
        let loss = knife_edge_loss_from_v_db(2.4);
        assert!((loss - 20.5).abs() < 1.0, "got {loss}");
        assert!(knife_edge_loss_from_v_db(10.0) > 30.0);
    }

    #[test]
    fn v_scales_with_sqrt_frequency() {
        let v1 = fresnel_v(5.0, 100.0, 1_000.0, 1e9);
        let v4 = fresnel_v(5.0, 100.0, 1_000.0, 4e9);
        assert!((v4 / v1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn close_aircraft_smaller_loss_than_distant() {
        // The paper's key geometry: an edge 3 m above the sensor, 10 m
        // away. A distant aircraft at low elevation stays deep in shadow; a
        // nearby aircraft at high elevation clears the edge.
        let f = 1.09e9;
        // Distant: ray nearly horizontal, edge 3 m above the ray.
        let deep = knife_edge_loss_db(3.0, 10.0, 80_000.0, f);
        // Near/high: ray passes 5 m *above* the edge.
        let clear = knife_edge_loss_db(-5.0, 10.0, 5_000.0, f);
        assert!(deep > 15.0, "deep shadow {deep}");
        assert_eq!(clear, 0.0);
    }

    #[test]
    fn fresnel_zone_radius_midpoint() {
        // 1 GHz over 10 km: r = sqrt(λ·d1·d2/d) = sqrt(0.3·5000·5000/10000) ≈ 27.4 m.
        let r = fresnel_zone_radius_m(5_000.0, 5_000.0, 1e9);
        assert!((r - 27.4).abs() < 0.3, "got {r}");
    }

    proptest! {
        /// Loss is monotone in v above the clearance threshold.
        #[test]
        fn loss_monotone_in_v(v1 in -0.7f64..10.0, v2 in -0.7f64..10.0) {
            let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
            prop_assert!(
                knife_edge_loss_from_v_db(lo) <= knife_edge_loss_from_v_db(hi) + 1e-9
            );
        }

        /// Loss is always non-negative and finite.
        #[test]
        fn loss_non_negative(v in -100.0f64..100.0) {
            let l = knife_edge_loss_from_v_db(v);
            prop_assert!(l >= 0.0 && l.is_finite());
        }
    }
}
