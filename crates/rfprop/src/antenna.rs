//! Antenna gain patterns.
//!
//! The paper notes: "The antenna connected to the SDR may have directional
//! gains … Our intention is not to disentangle antenna pattern from
//! physical occlusions, but rather to determine where the combination of
//! the two allows reception." We model the common cases so the combination
//! is present in the simulation too.

use serde::{Deserialize, Serialize};

/// An antenna gain pattern: gain in dBi as a function of direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AntennaPattern {
    /// Uniform gain in all directions.
    Isotropic {
        /// Fixed gain in dBi.
        gain_dbi: f64,
    },
    /// Vertical whip/dipole: omnidirectional in azimuth, with an elevation
    /// null toward the zenith (cos² rolloff like an ideal half-wave dipole).
    VerticalDipole {
        /// Peak (horizon) gain in dBi; 2.15 for an ideal half-wave dipole.
        peak_gain_dbi: f64,
    },
    /// A sector/patch antenna pointed at an azimuth with a given beamwidth,
    /// Gaussian main-lobe rolloff and a front-to-back floor.
    Sector {
        /// Boresight azimuth, degrees.
        boresight_deg: f64,
        /// Half-power (−3 dB) beamwidth, degrees.
        beamwidth_deg: f64,
        /// Boresight gain, dBi.
        peak_gain_dbi: f64,
        /// Gain floor behind the antenna, dBi (e.g. peak − 25).
        back_gain_dbi: f64,
    },
}

impl AntennaPattern {
    /// The wideband discone-style antenna from the paper's setup (700–2700
    /// MHz wideband whip): modeled as a 2 dBi vertical dipole.
    pub fn paper_wideband_whip() -> Self {
        AntennaPattern::VerticalDipole { peak_gain_dbi: 2.0 }
    }

    /// Gain in dBi toward a direction given as (azimuth°, elevation°).
    pub fn gain_dbi(&self, azimuth_deg: f64, elevation_deg: f64) -> f64 {
        match *self {
            AntennaPattern::Isotropic { gain_dbi } => gain_dbi,
            AntennaPattern::VerticalDipole { peak_gain_dbi } => {
                // cos² elevation power rolloff: 0 dB at horizon, null at zenith.
                let el = elevation_deg.clamp(-90.0, 90.0).to_radians();
                let factor = el.cos().powi(2).max(1e-6);
                peak_gain_dbi + 10.0 * factor.log10()
            }
            AntennaPattern::Sector {
                boresight_deg,
                beamwidth_deg,
                peak_gain_dbi,
                back_gain_dbi,
            } => {
                let off = crate::antenna::angle_separation(azimuth_deg, boresight_deg);
                // Gaussian main lobe: −3 dB at ±beamwidth/2.
                let bw = beamwidth_deg.max(1.0);
                let rolloff = 3.0 * (2.0 * off / bw).powi(2);
                (peak_gain_dbi - rolloff).max(back_gain_dbi)
            }
        }
    }
}

/// Smallest absolute angular separation of two bearings (degrees).
///
/// (Duplicated from `aircal-geo` to keep this crate's antenna math
/// self-contained; the two are property-tested against each other in the
/// integration suite.)
fn angle_separation(a_deg: f64, b_deg: f64) -> f64 {
    let mut d = (a_deg - b_deg) % 360.0;
    if d > 180.0 {
        d -= 360.0;
    } else if d < -180.0 {
        d += 360.0;
    }
    d.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_uniform() {
        let a = AntennaPattern::Isotropic { gain_dbi: 3.0 };
        for az in [0.0, 90.0, 270.0] {
            for el in [-30.0, 0.0, 60.0] {
                assert_eq!(a.gain_dbi(az, el), 3.0);
            }
        }
    }

    #[test]
    fn dipole_horizon_peak_zenith_null() {
        let a = AntennaPattern::VerticalDipole { peak_gain_dbi: 2.15 };
        assert!((a.gain_dbi(123.0, 0.0) - 2.15).abs() < 1e-9);
        assert!(a.gain_dbi(0.0, 90.0) < -40.0, "zenith should be a null");
        // Azimuth-independent.
        assert_eq!(a.gain_dbi(10.0, 30.0), a.gain_dbi(250.0, 30.0));
    }

    #[test]
    fn dipole_rolloff_monotone_in_elevation() {
        let a = AntennaPattern::VerticalDipole { peak_gain_dbi: 2.0 };
        let mut prev = a.gain_dbi(0.0, 0.0);
        for el in (1..=9).map(|i| i as f64 * 10.0) {
            let g = a.gain_dbi(0.0, el);
            assert!(g <= prev + 1e-9, "elevation {el}");
            prev = g;
        }
    }

    #[test]
    fn sector_boresight_and_back() {
        let a = AntennaPattern::Sector {
            boresight_deg: 90.0,
            beamwidth_deg: 60.0,
            peak_gain_dbi: 14.0,
            back_gain_dbi: -11.0,
        };
        assert!((a.gain_dbi(90.0, 0.0) - 14.0).abs() < 1e-9);
        // −3 dB at the half-power points.
        assert!((a.gain_dbi(120.0, 0.0) - 11.0).abs() < 1e-9);
        assert!((a.gain_dbi(60.0, 0.0) - 11.0).abs() < 1e-9);
        // Behind: clipped at the back floor.
        assert_eq!(a.gain_dbi(270.0, 0.0), -11.0);
    }

    #[test]
    fn sector_wraps_azimuth() {
        let a = AntennaPattern::Sector {
            boresight_deg: 5.0,
            beamwidth_deg: 40.0,
            peak_gain_dbi: 10.0,
            back_gain_dbi: -15.0,
        };
        // 350° is 15° off boresight, same as 20°.
        assert!((a.gain_dbi(350.0, 0.0) - a.gain_dbi(20.0, 0.0)).abs() < 1e-9);
    }
}
