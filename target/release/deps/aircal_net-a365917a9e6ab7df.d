/root/repo/target/release/deps/aircal_net-a365917a9e6ab7df.d: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libaircal_net-a365917a9e6ab7df.rlib: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libaircal_net-a365917a9e6ab7df.rmeta: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/cloud.rs:
crates/net/src/node.rs:
crates/net/src/protocol.rs:
crates/net/src/transport.rs:
