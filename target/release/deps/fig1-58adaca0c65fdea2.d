/root/repo/target/release/deps/fig1-58adaca0c65fdea2.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-58adaca0c65fdea2: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
