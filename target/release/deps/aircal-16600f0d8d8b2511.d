/root/repo/target/release/deps/aircal-16600f0d8d8b2511.d: src/main.rs

/root/repo/target/release/deps/aircal-16600f0d8d8b2511: src/main.rs

src/main.rs:
