/root/repo/target/release/deps/aircal_net-044ffa7c6da8d997.d: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/release/deps/libaircal_net-044ffa7c6da8d997.rmeta: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/cloud.rs:
crates/net/src/node.rs:
crates/net/src/protocol.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
