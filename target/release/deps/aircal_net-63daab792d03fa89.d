/root/repo/target/release/deps/aircal_net-63daab792d03fa89.d: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

/root/repo/target/release/deps/aircal_net-63daab792d03fa89: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/cloud.rs:
crates/net/src/node.rs:
crates/net/src/protocol.rs:
crates/net/src/transport.rs:
