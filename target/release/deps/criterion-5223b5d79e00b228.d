/root/repo/target/release/deps/criterion-5223b5d79e00b228.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-5223b5d79e00b228: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
