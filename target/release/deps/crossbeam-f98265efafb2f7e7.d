/root/repo/target/release/deps/crossbeam-f98265efafb2f7e7.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f98265efafb2f7e7.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f98265efafb2f7e7.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
