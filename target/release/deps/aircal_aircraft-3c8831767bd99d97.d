/root/repo/target/release/deps/aircal_aircraft-3c8831767bd99d97.d: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs Cargo.toml

/root/repo/target/release/deps/libaircal_aircraft-3c8831767bd99d97.rmeta: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs Cargo.toml

crates/aircraft/src/lib.rs:
crates/aircraft/src/flight.rs:
crates/aircraft/src/generator.rs:
crates/aircraft/src/ground_truth.rs:
crates/aircraft/src/transponder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
