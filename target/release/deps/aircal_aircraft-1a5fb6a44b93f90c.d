/root/repo/target/release/deps/aircal_aircraft-1a5fb6a44b93f90c.d: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs Cargo.toml

/root/repo/target/release/deps/libaircal_aircraft-1a5fb6a44b93f90c.rmeta: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs Cargo.toml

crates/aircraft/src/lib.rs:
crates/aircraft/src/flight.rs:
crates/aircraft/src/generator.rs:
crates/aircraft/src/ground_truth.rs:
crates/aircraft/src/transponder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
