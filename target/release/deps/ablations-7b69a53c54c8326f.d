/root/repo/target/release/deps/ablations-7b69a53c54c8326f.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-7b69a53c54c8326f.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
