/root/repo/target/release/deps/aircal_rfprop-046aa2aa2321cf25.d: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs Cargo.toml

/root/repo/target/release/deps/libaircal_rfprop-046aa2aa2321cf25.rmeta: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs Cargo.toml

crates/rfprop/src/lib.rs:
crates/rfprop/src/antenna.rs:
crates/rfprop/src/diffraction.rs:
crates/rfprop/src/empirical.rs:
crates/rfprop/src/fading.rs:
crates/rfprop/src/linkbudget.rs:
crates/rfprop/src/materials.rs:
crates/rfprop/src/noise.rs:
crates/rfprop/src/pathloss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
