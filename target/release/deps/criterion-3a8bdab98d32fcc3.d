/root/repo/target/release/deps/criterion-3a8bdab98d32fcc3.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a8bdab98d32fcc3.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a8bdab98d32fcc3.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
