/root/repo/target/release/deps/rand_chacha-5f4186071acf367d.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-5f4186071acf367d: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
