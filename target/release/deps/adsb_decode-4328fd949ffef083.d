/root/repo/target/release/deps/adsb_decode-4328fd949ffef083.d: crates/bench/benches/adsb_decode.rs

/root/repo/target/release/deps/adsb_decode-4328fd949ffef083: crates/bench/benches/adsb_decode.rs

crates/bench/benches/adsb_decode.rs:
