/root/repo/target/release/deps/fig4-fbf7386896042057.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/release/deps/libfig4-fbf7386896042057.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
