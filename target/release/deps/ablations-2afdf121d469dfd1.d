/root/repo/target/release/deps/ablations-2afdf121d469dfd1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-2afdf121d469dfd1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
