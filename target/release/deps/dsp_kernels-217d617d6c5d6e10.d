/root/repo/target/release/deps/dsp_kernels-217d617d6c5d6e10.d: crates/bench/benches/dsp_kernels.rs

/root/repo/target/release/deps/dsp_kernels-217d617d6c5d6e10: crates/bench/benches/dsp_kernels.rs

crates/bench/benches/dsp_kernels.rs:
