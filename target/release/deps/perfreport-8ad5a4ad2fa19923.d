/root/repo/target/release/deps/perfreport-8ad5a4ad2fa19923.d: crates/bench/src/bin/perfreport.rs Cargo.toml

/root/repo/target/release/deps/libperfreport-8ad5a4ad2fa19923.rmeta: crates/bench/src/bin/perfreport.rs Cargo.toml

crates/bench/src/bin/perfreport.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
