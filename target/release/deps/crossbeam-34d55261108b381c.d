/root/repo/target/release/deps/crossbeam-34d55261108b381c.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-34d55261108b381c.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
