/root/repo/target/release/deps/serde_json-dbc1ceb98dcf51ad.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-dbc1ceb98dcf51ad.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
