/root/repo/target/release/deps/network_end_to_end-660e87824cdc1699.d: tests/network_end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libnetwork_end_to_end-660e87824cdc1699.rmeta: tests/network_end_to_end.rs Cargo.toml

tests/network_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
