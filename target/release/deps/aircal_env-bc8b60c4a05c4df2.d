/root/repo/target/release/deps/aircal_env-bc8b60c4a05c4df2.d: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

/root/repo/target/release/deps/libaircal_env-bc8b60c4a05c4df2.rlib: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

/root/repo/target/release/deps/libaircal_env-bc8b60c4a05c4df2.rmeta: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

crates/env/src/lib.rs:
crates/env/src/building.rs:
crates/env/src/scenarios.rs:
crates/env/src/site.rs:
crates/env/src/world.rs:
