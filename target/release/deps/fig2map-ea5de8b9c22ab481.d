/root/repo/target/release/deps/fig2map-ea5de8b9c22ab481.d: crates/bench/src/bin/fig2map.rs

/root/repo/target/release/deps/fig2map-ea5de8b9c22ab481: crates/bench/src/bin/fig2map.rs

crates/bench/src/bin/fig2map.rs:
