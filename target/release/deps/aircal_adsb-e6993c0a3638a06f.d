/root/repo/target/release/deps/aircal_adsb-e6993c0a3638a06f.d: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

/root/repo/target/release/deps/libaircal_adsb-e6993c0a3638a06f.rlib: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

/root/repo/target/release/deps/libaircal_adsb-e6993c0a3638a06f.rmeta: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

crates/adsb/src/lib.rs:
crates/adsb/src/altitude.rs:
crates/adsb/src/bits.rs:
crates/adsb/src/cpr.rs:
crates/adsb/src/crc.rs:
crates/adsb/src/decoder.rs:
crates/adsb/src/frame.rs:
crates/adsb/src/icao.rs:
crates/adsb/src/me.rs:
crates/adsb/src/ppm.rs:
