/root/repo/target/release/deps/ablations-935f4ad8ba26c166.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-935f4ad8ba26c166: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
