/root/repo/target/release/deps/aircal-d9cfb137f27d9e6a.d: src/main.rs Cargo.toml

/root/repo/target/release/deps/libaircal-d9cfb137f27d9e6a.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
