/root/repo/target/release/deps/rand_chacha-3173482cef51b899.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-3173482cef51b899.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
