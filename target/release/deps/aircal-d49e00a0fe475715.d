/root/repo/target/release/deps/aircal-d49e00a0fe475715.d: src/lib.rs

/root/repo/target/release/deps/libaircal-d49e00a0fe475715.rlib: src/lib.rs

/root/repo/target/release/deps/libaircal-d49e00a0fe475715.rmeta: src/lib.rs

src/lib.rs:
