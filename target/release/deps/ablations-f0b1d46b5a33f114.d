/root/repo/target/release/deps/ablations-f0b1d46b5a33f114.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-f0b1d46b5a33f114.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
