/root/repo/target/release/deps/aircal_sdr-3f46f4c566fcaf14.d: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

/root/repo/target/release/deps/libaircal_sdr-3f46f4c566fcaf14.rlib: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

/root/repo/target/release/deps/libaircal_sdr-3f46f4c566fcaf14.rmeta: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

crates/sdr/src/lib.rs:
crates/sdr/src/capture.rs:
crates/sdr/src/faults.rs:
crates/sdr/src/frontend.rs:
