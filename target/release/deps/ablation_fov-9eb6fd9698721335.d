/root/repo/target/release/deps/ablation_fov-9eb6fd9698721335.d: crates/bench/benches/ablation_fov.rs Cargo.toml

/root/repo/target/release/deps/libablation_fov-9eb6fd9698721335.rmeta: crates/bench/benches/ablation_fov.rs Cargo.toml

crates/bench/benches/ablation_fov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
