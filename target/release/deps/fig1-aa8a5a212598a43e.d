/root/repo/target/release/deps/fig1-aa8a5a212598a43e.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/release/deps/libfig1-aa8a5a212598a43e.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
