/root/repo/target/release/deps/serde-809588371a8ad60e.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-809588371a8ad60e.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
