/root/repo/target/release/deps/aircal_core-17555e996c6b4f0f.d: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/engine.rs crates/core/src/fleet.rs crates/core/src/fov.rs crates/core/src/freqprofile.rs crates/core/src/history.rs crates/core/src/repeat.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/survey.rs crates/core/src/trust.rs Cargo.toml

/root/repo/target/release/deps/libaircal_core-17555e996c6b4f0f.rmeta: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/engine.rs crates/core/src/fleet.rs crates/core/src/fov.rs crates/core/src/freqprofile.rs crates/core/src/history.rs crates/core/src/repeat.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/survey.rs crates/core/src/trust.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/classifier.rs:
crates/core/src/engine.rs:
crates/core/src/fleet.rs:
crates/core/src/fov.rs:
crates/core/src/freqprofile.rs:
crates/core/src/history.rs:
crates/core/src/repeat.rs:
crates/core/src/report.rs:
crates/core/src/scheduler.rs:
crates/core/src/survey.rs:
crates/core/src/trust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
