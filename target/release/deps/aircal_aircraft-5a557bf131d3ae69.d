/root/repo/target/release/deps/aircal_aircraft-5a557bf131d3ae69.d: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

/root/repo/target/release/deps/libaircal_aircraft-5a557bf131d3ae69.rlib: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

/root/repo/target/release/deps/libaircal_aircraft-5a557bf131d3ae69.rmeta: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

crates/aircraft/src/lib.rs:
crates/aircraft/src/flight.rs:
crates/aircraft/src/generator.rs:
crates/aircraft/src/ground_truth.rs:
crates/aircraft/src/transponder.rs:
