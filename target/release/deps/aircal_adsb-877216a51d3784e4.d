/root/repo/target/release/deps/aircal_adsb-877216a51d3784e4.d: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

/root/repo/target/release/deps/aircal_adsb-877216a51d3784e4: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

crates/adsb/src/lib.rs:
crates/adsb/src/altitude.rs:
crates/adsb/src/bits.rs:
crates/adsb/src/cpr.rs:
crates/adsb/src/crc.rs:
crates/adsb/src/decoder.rs:
crates/adsb/src/frame.rs:
crates/adsb/src/icao.rs:
crates/adsb/src/me.rs:
crates/adsb/src/ppm.rs:
