/root/repo/target/release/deps/aircal-0f243823b078d92f.d: src/main.rs Cargo.toml

/root/repo/target/release/deps/libaircal-0f243823b078d92f.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
