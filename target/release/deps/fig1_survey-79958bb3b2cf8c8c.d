/root/repo/target/release/deps/fig1_survey-79958bb3b2cf8c8c.d: crates/bench/benches/fig1_survey.rs Cargo.toml

/root/repo/target/release/deps/libfig1_survey-79958bb3b2cf8c8c.rmeta: crates/bench/benches/fig1_survey.rs Cargo.toml

crates/bench/benches/fig1_survey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
