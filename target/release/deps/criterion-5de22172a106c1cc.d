/root/repo/target/release/deps/criterion-5de22172a106c1cc.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-5de22172a106c1cc.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
