/root/repo/target/release/deps/aircal_sdr-9ff680f3415f9a1a.d: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs Cargo.toml

/root/repo/target/release/deps/libaircal_sdr-9ff680f3415f9a1a.rmeta: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs Cargo.toml

crates/sdr/src/lib.rs:
crates/sdr/src/capture.rs:
crates/sdr/src/faults.rs:
crates/sdr/src/frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
