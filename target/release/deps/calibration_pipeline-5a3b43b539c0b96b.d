/root/repo/target/release/deps/calibration_pipeline-5a3b43b539c0b96b.d: tests/calibration_pipeline.rs

/root/repo/target/release/deps/calibration_pipeline-5a3b43b539c0b96b: tests/calibration_pipeline.rs

tests/calibration_pipeline.rs:
