/root/repo/target/release/deps/fig4-f075a3913c7eb499.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-f075a3913c7eb499: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
