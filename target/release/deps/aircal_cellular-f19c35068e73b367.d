/root/repo/target/release/deps/aircal_cellular-f19c35068e73b367.d: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

/root/repo/target/release/deps/libaircal_cellular-f19c35068e73b367.rlib: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

/root/repo/target/release/deps/libaircal_cellular-f19c35068e73b367.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bands.rs:
crates/cellular/src/nr.rs:
crates/cellular/src/scan.rs:
crates/cellular/src/tower.rs:
