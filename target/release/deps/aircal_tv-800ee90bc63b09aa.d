/root/repo/target/release/deps/aircal_tv-800ee90bc63b09aa.d: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

/root/repo/target/release/deps/libaircal_tv-800ee90bc63b09aa.rlib: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

/root/repo/target/release/deps/libaircal_tv-800ee90bc63b09aa.rmeta: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

crates/tv/src/lib.rs:
crates/tv/src/channels.rs:
crates/tv/src/probe.rs:
crates/tv/src/synth.rs:
crates/tv/src/towers.rs:
