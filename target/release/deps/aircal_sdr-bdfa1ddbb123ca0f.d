/root/repo/target/release/deps/aircal_sdr-bdfa1ddbb123ca0f.d: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

/root/repo/target/release/deps/aircal_sdr-bdfa1ddbb123ca0f: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

crates/sdr/src/lib.rs:
crates/sdr/src/capture.rs:
crates/sdr/src/faults.rs:
crates/sdr/src/frontend.rs:
