/root/repo/target/release/deps/aircal_rfprop-0a6d6c7e6845fce8.d: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

/root/repo/target/release/deps/aircal_rfprop-0a6d6c7e6845fce8: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

crates/rfprop/src/lib.rs:
crates/rfprop/src/antenna.rs:
crates/rfprop/src/diffraction.rs:
crates/rfprop/src/empirical.rs:
crates/rfprop/src/fading.rs:
crates/rfprop/src/linkbudget.rs:
crates/rfprop/src/materials.rs:
crates/rfprop/src/noise.rs:
crates/rfprop/src/pathloss.rs:
