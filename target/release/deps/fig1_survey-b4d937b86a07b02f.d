/root/repo/target/release/deps/fig1_survey-b4d937b86a07b02f.d: crates/bench/benches/fig1_survey.rs

/root/repo/target/release/deps/fig1_survey-b4d937b86a07b02f: crates/bench/benches/fig1_survey.rs

crates/bench/benches/fig1_survey.rs:
