/root/repo/target/release/deps/aircal-839af5dd4f84ebca.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libaircal-839af5dd4f84ebca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
