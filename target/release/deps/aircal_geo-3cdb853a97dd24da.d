/root/repo/target/release/deps/aircal_geo-3cdb853a97dd24da.d: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

/root/repo/target/release/deps/aircal_geo-3cdb853a97dd24da: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

crates/geo/src/lib.rs:
crates/geo/src/angle.rs:
crates/geo/src/coord.rs:
crates/geo/src/polygon.rs:
