/root/repo/target/release/deps/perfreport-81349963403f4b77.d: crates/bench/src/bin/perfreport.rs

/root/repo/target/release/deps/perfreport-81349963403f4b77: crates/bench/src/bin/perfreport.rs

crates/bench/src/bin/perfreport.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
