/root/repo/target/release/deps/aircal_geo-cdf712aa2ad50a59.d: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

/root/repo/target/release/deps/libaircal_geo-cdf712aa2ad50a59.rlib: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

/root/repo/target/release/deps/libaircal_geo-cdf712aa2ad50a59.rmeta: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

crates/geo/src/lib.rs:
crates/geo/src/angle.rs:
crates/geo/src/coord.rs:
crates/geo/src/polygon.rs:
