/root/repo/target/release/deps/paper_procedure-df0eee7032bfc530.d: tests/paper_procedure.rs Cargo.toml

/root/repo/target/release/deps/libpaper_procedure-df0eee7032bfc530.rmeta: tests/paper_procedure.rs Cargo.toml

tests/paper_procedure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
