/root/repo/target/release/deps/aircal_bench-6dfe21c95b9329c4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaircal_bench-6dfe21c95b9329c4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaircal_bench-6dfe21c95b9329c4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
