/root/repo/target/release/deps/paper_procedure-3efe77db5479e882.d: tests/paper_procedure.rs

/root/repo/target/release/deps/paper_procedure-3efe77db5479e882: tests/paper_procedure.rs

tests/paper_procedure.rs:
