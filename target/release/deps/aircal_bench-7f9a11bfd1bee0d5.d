/root/repo/target/release/deps/aircal_bench-7f9a11bfd1bee0d5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libaircal_bench-7f9a11bfd1bee0d5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
