/root/repo/target/release/deps/aircal_tv-96ac826c6ad8b2a8.d: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

/root/repo/target/release/deps/aircal_tv-96ac826c6ad8b2a8: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

crates/tv/src/lib.rs:
crates/tv/src/channels.rs:
crates/tv/src/probe.rs:
crates/tv/src/synth.rs:
crates/tv/src/towers.rs:
