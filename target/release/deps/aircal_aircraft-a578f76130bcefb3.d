/root/repo/target/release/deps/aircal_aircraft-a578f76130bcefb3.d: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

/root/repo/target/release/deps/aircal_aircraft-a578f76130bcefb3: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

crates/aircraft/src/lib.rs:
crates/aircraft/src/flight.rs:
crates/aircraft/src/generator.rs:
crates/aircraft/src/ground_truth.rs:
crates/aircraft/src/transponder.rs:
