/root/repo/target/release/deps/ablation_fov-734f151fd8fe0ff5.d: crates/bench/benches/ablation_fov.rs

/root/repo/target/release/deps/ablation_fov-734f151fd8fe0ff5: crates/bench/benches/ablation_fov.rs

crates/bench/benches/ablation_fov.rs:
