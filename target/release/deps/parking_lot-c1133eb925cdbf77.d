/root/repo/target/release/deps/parking_lot-c1133eb925cdbf77.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-c1133eb925cdbf77.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
