/root/repo/target/release/deps/aircal_cellular-14ee90cf98cdc07e.d: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs Cargo.toml

/root/repo/target/release/deps/libaircal_cellular-14ee90cf98cdc07e.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs Cargo.toml

crates/cellular/src/lib.rs:
crates/cellular/src/bands.rs:
crates/cellular/src/nr.rs:
crates/cellular/src/scan.rs:
crates/cellular/src/tower.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
