/root/repo/target/release/deps/fig1-16f0f43960a13827.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-16f0f43960a13827: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
