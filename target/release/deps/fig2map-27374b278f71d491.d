/root/repo/target/release/deps/fig2map-27374b278f71d491.d: crates/bench/src/bin/fig2map.rs Cargo.toml

/root/repo/target/release/deps/libfig2map-27374b278f71d491.rmeta: crates/bench/src/bin/fig2map.rs Cargo.toml

crates/bench/src/bin/fig2map.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
