/root/repo/target/release/deps/adsb_decode-037b616e98884cf1.d: crates/bench/benches/adsb_decode.rs Cargo.toml

/root/repo/target/release/deps/libadsb_decode-037b616e98884cf1.rmeta: crates/bench/benches/adsb_decode.rs Cargo.toml

crates/bench/benches/adsb_decode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
