/root/repo/target/release/deps/network_end_to_end-071dd34386ad336e.d: tests/network_end_to_end.rs

/root/repo/target/release/deps/network_end_to_end-071dd34386ad336e: tests/network_end_to_end.rs

tests/network_end_to_end.rs:
