/root/repo/target/release/deps/aircal_geo-6a61d52bc2c867dc.d: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs Cargo.toml

/root/repo/target/release/deps/libaircal_geo-6a61d52bc2c867dc.rmeta: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/angle.rs:
crates/geo/src/coord.rs:
crates/geo/src/polygon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
