/root/repo/target/release/deps/parking_lot-00849e8a16033c4a.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-00849e8a16033c4a: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
