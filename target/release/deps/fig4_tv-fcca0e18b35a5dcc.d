/root/repo/target/release/deps/fig4_tv-fcca0e18b35a5dcc.d: crates/bench/benches/fig4_tv.rs Cargo.toml

/root/repo/target/release/deps/libfig4_tv-fcca0e18b35a5dcc.rmeta: crates/bench/benches/fig4_tv.rs Cargo.toml

crates/bench/benches/fig4_tv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
