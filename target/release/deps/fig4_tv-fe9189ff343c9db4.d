/root/repo/target/release/deps/fig4_tv-fe9189ff343c9db4.d: crates/bench/benches/fig4_tv.rs

/root/repo/target/release/deps/fig4_tv-fe9189ff343c9db4: crates/bench/benches/fig4_tv.rs

crates/bench/benches/fig4_tv.rs:
