/root/repo/target/release/deps/aircal_dsp-6b029878d2923af5.d: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs Cargo.toml

/root/repo/target/release/deps/libaircal_dsp-6b029878d2923af5.rmeta: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/agc.rs:
crates/dsp/src/corr.rs:
crates/dsp/src/cplx.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/fir.rs:
crates/dsp/src/par.rs:
crates/dsp/src/power.rs:
crates/dsp/src/prbs.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
