/root/repo/target/release/deps/phy_end_to_end-be53739e1ac2a6ef.d: tests/phy_end_to_end.rs

/root/repo/target/release/deps/phy_end_to_end-be53739e1ac2a6ef: tests/phy_end_to_end.rs

tests/phy_end_to_end.rs:
