/root/repo/target/release/deps/rand_chacha-dfe56206fe95f6e7.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-dfe56206fe95f6e7.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
