/root/repo/target/release/deps/aircal_adsb-83f9fd6a7314c69d.d: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs Cargo.toml

/root/repo/target/release/deps/libaircal_adsb-83f9fd6a7314c69d.rmeta: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs Cargo.toml

crates/adsb/src/lib.rs:
crates/adsb/src/altitude.rs:
crates/adsb/src/bits.rs:
crates/adsb/src/cpr.rs:
crates/adsb/src/crc.rs:
crates/adsb/src/decoder.rs:
crates/adsb/src/frame.rs:
crates/adsb/src/icao.rs:
crates/adsb/src/me.rs:
crates/adsb/src/ppm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
