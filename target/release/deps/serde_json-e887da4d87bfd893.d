/root/repo/target/release/deps/serde_json-e887da4d87bfd893.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-e887da4d87bfd893.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
