/root/repo/target/release/deps/aircal_env-d5fab1629c451ada.d: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

/root/repo/target/release/deps/aircal_env-d5fab1629c451ada: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

crates/env/src/lib.rs:
crates/env/src/building.rs:
crates/env/src/scenarios.rs:
crates/env/src/site.rs:
crates/env/src/world.rs:
