/root/repo/target/release/deps/serde-47fcf24c999a473a.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-47fcf24c999a473a.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
