/root/repo/target/release/deps/aircal_bench-7771bab4d245c28a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/aircal_bench-7771bab4d245c28a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
