/root/repo/target/release/deps/crossbeam-e5fcbbcd564a99b7.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-e5fcbbcd564a99b7: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
