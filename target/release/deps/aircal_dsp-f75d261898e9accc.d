/root/repo/target/release/deps/aircal_dsp-f75d261898e9accc.d: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libaircal_dsp-f75d261898e9accc.rlib: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libaircal_dsp-f75d261898e9accc.rmeta: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/agc.rs:
crates/dsp/src/corr.rs:
crates/dsp/src/cplx.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/fir.rs:
crates/dsp/src/par.rs:
crates/dsp/src/power.rs:
crates/dsp/src/prbs.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/window.rs:
