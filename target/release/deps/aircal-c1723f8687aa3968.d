/root/repo/target/release/deps/aircal-c1723f8687aa3968.d: src/main.rs

/root/repo/target/release/deps/aircal-c1723f8687aa3968: src/main.rs

src/main.rs:
