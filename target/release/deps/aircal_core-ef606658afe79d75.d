/root/repo/target/release/deps/aircal_core-ef606658afe79d75.d: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/engine.rs crates/core/src/fleet.rs crates/core/src/fov.rs crates/core/src/freqprofile.rs crates/core/src/history.rs crates/core/src/repeat.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/survey.rs crates/core/src/trust.rs

/root/repo/target/release/deps/aircal_core-ef606658afe79d75: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/engine.rs crates/core/src/fleet.rs crates/core/src/fov.rs crates/core/src/freqprofile.rs crates/core/src/history.rs crates/core/src/repeat.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/survey.rs crates/core/src/trust.rs

crates/core/src/lib.rs:
crates/core/src/classifier.rs:
crates/core/src/engine.rs:
crates/core/src/fleet.rs:
crates/core/src/fov.rs:
crates/core/src/freqprofile.rs:
crates/core/src/history.rs:
crates/core/src/repeat.rs:
crates/core/src/report.rs:
crates/core/src/scheduler.rs:
crates/core/src/survey.rs:
crates/core/src/trust.rs:
