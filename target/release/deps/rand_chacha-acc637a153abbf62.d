/root/repo/target/release/deps/rand_chacha-acc637a153abbf62.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-acc637a153abbf62.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-acc637a153abbf62.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
