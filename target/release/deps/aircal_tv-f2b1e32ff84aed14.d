/root/repo/target/release/deps/aircal_tv-f2b1e32ff84aed14.d: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs Cargo.toml

/root/repo/target/release/deps/libaircal_tv-f2b1e32ff84aed14.rmeta: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs Cargo.toml

crates/tv/src/lib.rs:
crates/tv/src/channels.rs:
crates/tv/src/probe.rs:
crates/tv/src/synth.rs:
crates/tv/src/towers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
