/root/repo/target/release/deps/aircal_env-8305fd06a194054c.d: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs Cargo.toml

/root/repo/target/release/deps/libaircal_env-8305fd06a194054c.rmeta: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs Cargo.toml

crates/env/src/lib.rs:
crates/env/src/building.rs:
crates/env/src/scenarios.rs:
crates/env/src/site.rs:
crates/env/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
