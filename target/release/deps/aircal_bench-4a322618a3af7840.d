/root/repo/target/release/deps/aircal_bench-4a322618a3af7840.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libaircal_bench-4a322618a3af7840.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
