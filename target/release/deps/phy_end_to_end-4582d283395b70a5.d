/root/repo/target/release/deps/phy_end_to_end-4582d283395b70a5.d: tests/phy_end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libphy_end_to_end-4582d283395b70a5.rmeta: tests/phy_end_to_end.rs Cargo.toml

tests/phy_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
