/root/repo/target/release/deps/crossbeam-220a1a805f20e0f7.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-220a1a805f20e0f7.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
