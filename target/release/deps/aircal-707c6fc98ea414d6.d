/root/repo/target/release/deps/aircal-707c6fc98ea414d6.d: src/lib.rs

/root/repo/target/release/deps/aircal-707c6fc98ea414d6: src/lib.rs

src/lib.rs:
