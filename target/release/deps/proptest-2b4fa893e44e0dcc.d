/root/repo/target/release/deps/proptest-2b4fa893e44e0dcc.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-2b4fa893e44e0dcc: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
