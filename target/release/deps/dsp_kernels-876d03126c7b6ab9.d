/root/repo/target/release/deps/dsp_kernels-876d03126c7b6ab9.d: crates/bench/benches/dsp_kernels.rs Cargo.toml

/root/repo/target/release/deps/libdsp_kernels-876d03126c7b6ab9.rmeta: crates/bench/benches/dsp_kernels.rs Cargo.toml

crates/bench/benches/dsp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
