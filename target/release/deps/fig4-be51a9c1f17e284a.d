/root/repo/target/release/deps/fig4-be51a9c1f17e284a.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/release/deps/libfig4-be51a9c1f17e284a.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
