/root/repo/target/release/deps/fig2map-6d11da15c4a8a2f3.d: crates/bench/src/bin/fig2map.rs

/root/repo/target/release/deps/fig2map-6d11da15c4a8a2f3: crates/bench/src/bin/fig2map.rs

crates/bench/src/bin/fig2map.rs:
