/root/repo/target/release/deps/proptest-9e47fe6c9e9f4f63.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-9e47fe6c9e9f4f63.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
