/root/repo/target/release/deps/calibration_pipeline-3603eb41b1e04d9c.d: tests/calibration_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libcalibration_pipeline-3603eb41b1e04d9c.rmeta: tests/calibration_pipeline.rs Cargo.toml

tests/calibration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
