/root/repo/target/release/deps/fig2map-8da3dab4d3ed44ac.d: crates/bench/src/bin/fig2map.rs Cargo.toml

/root/repo/target/release/deps/libfig2map-8da3dab4d3ed44ac.rmeta: crates/bench/src/bin/fig2map.rs Cargo.toml

crates/bench/src/bin/fig2map.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
