/root/repo/target/release/deps/perfreport-99b1a9ad92261e70.d: crates/bench/src/bin/perfreport.rs Cargo.toml

/root/repo/target/release/deps/libperfreport-99b1a9ad92261e70.rmeta: crates/bench/src/bin/perfreport.rs Cargo.toml

crates/bench/src/bin/perfreport.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
