/root/repo/target/release/deps/proptest-799b8d64679a8624.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-799b8d64679a8624.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
