/root/repo/target/release/deps/parking_lot-fcb4d936619f4e2e.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-fcb4d936619f4e2e.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-fcb4d936619f4e2e.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
