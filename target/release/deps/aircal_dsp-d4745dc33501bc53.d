/root/repo/target/release/deps/aircal_dsp-d4745dc33501bc53.d: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/aircal_dsp-d4745dc33501bc53: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/agc.rs:
crates/dsp/src/corr.rs:
crates/dsp/src/cplx.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/fir.rs:
crates/dsp/src/par.rs:
crates/dsp/src/power.rs:
crates/dsp/src/prbs.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/window.rs:
