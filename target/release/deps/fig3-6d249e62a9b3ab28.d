/root/repo/target/release/deps/fig3-6d249e62a9b3ab28.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-6d249e62a9b3ab28: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
