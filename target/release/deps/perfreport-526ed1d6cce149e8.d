/root/repo/target/release/deps/perfreport-526ed1d6cce149e8.d: crates/bench/src/bin/perfreport.rs

/root/repo/target/release/deps/perfreport-526ed1d6cce149e8: crates/bench/src/bin/perfreport.rs

crates/bench/src/bin/perfreport.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
