/root/repo/target/release/deps/fig3_cellular-e4ef3e1ba4cc638c.d: crates/bench/benches/fig3_cellular.rs Cargo.toml

/root/repo/target/release/deps/libfig3_cellular-e4ef3e1ba4cc638c.rmeta: crates/bench/benches/fig3_cellular.rs Cargo.toml

crates/bench/benches/fig3_cellular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
