/root/repo/target/release/deps/aircal_cellular-be190a3468ca6463.d: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

/root/repo/target/release/deps/aircal_cellular-be190a3468ca6463: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bands.rs:
crates/cellular/src/nr.rs:
crates/cellular/src/scan.rs:
crates/cellular/src/tower.rs:
