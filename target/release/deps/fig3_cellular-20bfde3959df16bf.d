/root/repo/target/release/deps/fig3_cellular-20bfde3959df16bf.d: crates/bench/benches/fig3_cellular.rs

/root/repo/target/release/deps/fig3_cellular-20bfde3959df16bf: crates/bench/benches/fig3_cellular.rs

crates/bench/benches/fig3_cellular.rs:
