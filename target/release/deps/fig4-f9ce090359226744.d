/root/repo/target/release/deps/fig4-f9ce090359226744.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-f9ce090359226744: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
