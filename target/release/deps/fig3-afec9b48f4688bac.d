/root/repo/target/release/deps/fig3-afec9b48f4688bac.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-afec9b48f4688bac: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
