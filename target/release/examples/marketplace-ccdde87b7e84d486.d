/root/repo/target/release/examples/marketplace-ccdde87b7e84d486.d: examples/marketplace.rs

/root/repo/target/release/examples/marketplace-ccdde87b7e84d486: examples/marketplace.rs

examples/marketplace.rs:
