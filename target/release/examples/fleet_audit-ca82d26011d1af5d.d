/root/repo/target/release/examples/fleet_audit-ca82d26011d1af5d.d: examples/fleet_audit.rs Cargo.toml

/root/repo/target/release/examples/libfleet_audit-ca82d26011d1af5d.rmeta: examples/fleet_audit.rs Cargo.toml

examples/fleet_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
