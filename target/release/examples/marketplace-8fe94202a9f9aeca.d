/root/repo/target/release/examples/marketplace-8fe94202a9f9aeca.d: examples/marketplace.rs Cargo.toml

/root/repo/target/release/examples/libmarketplace-8fe94202a9f9aeca.rmeta: examples/marketplace.rs Cargo.toml

examples/marketplace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
