/root/repo/target/release/examples/spectrum_monitor-6f43ac3f40230f72.d: examples/spectrum_monitor.rs Cargo.toml

/root/repo/target/release/examples/libspectrum_monitor-6f43ac3f40230f72.rmeta: examples/spectrum_monitor.rs Cargo.toml

examples/spectrum_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
