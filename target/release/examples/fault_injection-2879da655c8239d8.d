/root/repo/target/release/examples/fault_injection-2879da655c8239d8.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/release/examples/libfault_injection-2879da655c8239d8.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
