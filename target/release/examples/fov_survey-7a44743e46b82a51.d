/root/repo/target/release/examples/fov_survey-7a44743e46b82a51.d: examples/fov_survey.rs

/root/repo/target/release/examples/fov_survey-7a44743e46b82a51: examples/fov_survey.rs

examples/fov_survey.rs:
