/root/repo/target/release/examples/fleet_audit-1611e855c5ebb365.d: examples/fleet_audit.rs

/root/repo/target/release/examples/fleet_audit-1611e855c5ebb365: examples/fleet_audit.rs

examples/fleet_audit.rs:
