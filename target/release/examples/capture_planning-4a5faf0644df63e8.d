/root/repo/target/release/examples/capture_planning-4a5faf0644df63e8.d: examples/capture_planning.rs

/root/repo/target/release/examples/capture_planning-4a5faf0644df63e8: examples/capture_planning.rs

examples/capture_planning.rs:
