/root/repo/target/release/examples/frequency_sweep-4b88dd37cf0881c1.d: examples/frequency_sweep.rs Cargo.toml

/root/repo/target/release/examples/libfrequency_sweep-4b88dd37cf0881c1.rmeta: examples/frequency_sweep.rs Cargo.toml

examples/frequency_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
