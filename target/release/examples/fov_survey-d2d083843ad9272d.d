/root/repo/target/release/examples/fov_survey-d2d083843ad9272d.d: examples/fov_survey.rs Cargo.toml

/root/repo/target/release/examples/libfov_survey-d2d083843ad9272d.rmeta: examples/fov_survey.rs Cargo.toml

examples/fov_survey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
