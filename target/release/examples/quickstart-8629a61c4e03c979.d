/root/repo/target/release/examples/quickstart-8629a61c4e03c979.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8629a61c4e03c979: examples/quickstart.rs

examples/quickstart.rs:
