/root/repo/target/release/examples/fault_injection-9990c2874f5383ef.d: examples/fault_injection.rs

/root/repo/target/release/examples/fault_injection-9990c2874f5383ef: examples/fault_injection.rs

examples/fault_injection.rs:
