/root/repo/target/release/examples/spectrum_monitor-0d11320d670388e2.d: examples/spectrum_monitor.rs

/root/repo/target/release/examples/spectrum_monitor-0d11320d670388e2: examples/spectrum_monitor.rs

examples/spectrum_monitor.rs:
