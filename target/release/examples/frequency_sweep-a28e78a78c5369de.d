/root/repo/target/release/examples/frequency_sweep-a28e78a78c5369de.d: examples/frequency_sweep.rs

/root/repo/target/release/examples/frequency_sweep-a28e78a78c5369de: examples/frequency_sweep.rs

examples/frequency_sweep.rs:
