/root/repo/target/release/examples/capture_planning-77a6a44f76e9b459.d: examples/capture_planning.rs Cargo.toml

/root/repo/target/release/examples/libcapture_planning-77a6a44f76e9b459.rmeta: examples/capture_planning.rs Cargo.toml

examples/capture_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
