/root/repo/target/debug/deps/fig2map-c52772cccf8c2823.d: crates/bench/src/bin/fig2map.rs

/root/repo/target/debug/deps/fig2map-c52772cccf8c2823: crates/bench/src/bin/fig2map.rs

crates/bench/src/bin/fig2map.rs:
