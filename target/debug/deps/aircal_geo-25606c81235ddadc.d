/root/repo/target/debug/deps/aircal_geo-25606c81235ddadc.d: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

/root/repo/target/debug/deps/aircal_geo-25606c81235ddadc: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

crates/geo/src/lib.rs:
crates/geo/src/angle.rs:
crates/geo/src/coord.rs:
crates/geo/src/polygon.rs:
