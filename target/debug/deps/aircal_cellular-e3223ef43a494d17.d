/root/repo/target/debug/deps/aircal_cellular-e3223ef43a494d17.d: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

/root/repo/target/debug/deps/libaircal_cellular-e3223ef43a494d17.rlib: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

/root/repo/target/debug/deps/libaircal_cellular-e3223ef43a494d17.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bands.rs:
crates/cellular/src/nr.rs:
crates/cellular/src/scan.rs:
crates/cellular/src/tower.rs:
