/root/repo/target/debug/deps/aircal_bench-6af5bfcb8020201b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/aircal_bench-6af5bfcb8020201b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
