/root/repo/target/debug/deps/aircal_rfprop-44a918a57921815c.d: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

/root/repo/target/debug/deps/aircal_rfprop-44a918a57921815c: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

crates/rfprop/src/lib.rs:
crates/rfprop/src/antenna.rs:
crates/rfprop/src/diffraction.rs:
crates/rfprop/src/empirical.rs:
crates/rfprop/src/fading.rs:
crates/rfprop/src/linkbudget.rs:
crates/rfprop/src/materials.rs:
crates/rfprop/src/noise.rs:
crates/rfprop/src/pathloss.rs:
