/root/repo/target/debug/deps/crossbeam-8df77e1e5a4850e9.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-8df77e1e5a4850e9: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
