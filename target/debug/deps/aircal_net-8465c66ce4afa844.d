/root/repo/target/debug/deps/aircal_net-8465c66ce4afa844.d: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libaircal_net-8465c66ce4afa844.rlib: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libaircal_net-8465c66ce4afa844.rmeta: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/cloud.rs:
crates/net/src/node.rs:
crates/net/src/protocol.rs:
crates/net/src/transport.rs:
