/root/repo/target/debug/deps/aircal_adsb-3c06de02c105d10c.d: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

/root/repo/target/debug/deps/libaircal_adsb-3c06de02c105d10c.rlib: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

/root/repo/target/debug/deps/libaircal_adsb-3c06de02c105d10c.rmeta: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

crates/adsb/src/lib.rs:
crates/adsb/src/altitude.rs:
crates/adsb/src/bits.rs:
crates/adsb/src/cpr.rs:
crates/adsb/src/crc.rs:
crates/adsb/src/decoder.rs:
crates/adsb/src/frame.rs:
crates/adsb/src/icao.rs:
crates/adsb/src/me.rs:
crates/adsb/src/ppm.rs:
