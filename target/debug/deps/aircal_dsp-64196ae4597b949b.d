/root/repo/target/debug/deps/aircal_dsp-64196ae4597b949b.d: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libaircal_dsp-64196ae4597b949b.rlib: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libaircal_dsp-64196ae4597b949b.rmeta: crates/dsp/src/lib.rs crates/dsp/src/agc.rs crates/dsp/src/corr.rs crates/dsp/src/cplx.rs crates/dsp/src/fft.rs crates/dsp/src/fir.rs crates/dsp/src/par.rs crates/dsp/src/power.rs crates/dsp/src/prbs.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/agc.rs:
crates/dsp/src/corr.rs:
crates/dsp/src/cplx.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/fir.rs:
crates/dsp/src/par.rs:
crates/dsp/src/power.rs:
crates/dsp/src/prbs.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/window.rs:
