/root/repo/target/debug/deps/aircal_net-58e5d7cbd20d26b1.d: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/aircal_net-58e5d7cbd20d26b1: crates/net/src/lib.rs crates/net/src/cloud.rs crates/net/src/node.rs crates/net/src/protocol.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/cloud.rs:
crates/net/src/node.rs:
crates/net/src/protocol.rs:
crates/net/src/transport.rs:
