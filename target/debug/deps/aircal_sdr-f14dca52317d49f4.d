/root/repo/target/debug/deps/aircal_sdr-f14dca52317d49f4.d: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

/root/repo/target/debug/deps/libaircal_sdr-f14dca52317d49f4.rlib: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

/root/repo/target/debug/deps/libaircal_sdr-f14dca52317d49f4.rmeta: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

crates/sdr/src/lib.rs:
crates/sdr/src/capture.rs:
crates/sdr/src/faults.rs:
crates/sdr/src/frontend.rs:
