/root/repo/target/debug/deps/aircal_tv-5bc8c03026f4bcd1.d: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

/root/repo/target/debug/deps/libaircal_tv-5bc8c03026f4bcd1.rlib: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

/root/repo/target/debug/deps/libaircal_tv-5bc8c03026f4bcd1.rmeta: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

crates/tv/src/lib.rs:
crates/tv/src/channels.rs:
crates/tv/src/probe.rs:
crates/tv/src/synth.rs:
crates/tv/src/towers.rs:
