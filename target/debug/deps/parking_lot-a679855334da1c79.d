/root/repo/target/debug/deps/parking_lot-a679855334da1c79.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-a679855334da1c79.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-a679855334da1c79.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
