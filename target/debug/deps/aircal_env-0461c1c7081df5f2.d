/root/repo/target/debug/deps/aircal_env-0461c1c7081df5f2.d: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

/root/repo/target/debug/deps/libaircal_env-0461c1c7081df5f2.rlib: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

/root/repo/target/debug/deps/libaircal_env-0461c1c7081df5f2.rmeta: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

crates/env/src/lib.rs:
crates/env/src/building.rs:
crates/env/src/scenarios.rs:
crates/env/src/site.rs:
crates/env/src/world.rs:
