/root/repo/target/debug/deps/aircal-4f07a7fe266ebbae.d: src/lib.rs

/root/repo/target/debug/deps/libaircal-4f07a7fe266ebbae.rlib: src/lib.rs

/root/repo/target/debug/deps/libaircal-4f07a7fe266ebbae.rmeta: src/lib.rs

src/lib.rs:
