/root/repo/target/debug/deps/aircal_aircraft-8b82312a29208d98.d: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

/root/repo/target/debug/deps/aircal_aircraft-8b82312a29208d98: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

crates/aircraft/src/lib.rs:
crates/aircraft/src/flight.rs:
crates/aircraft/src/generator.rs:
crates/aircraft/src/ground_truth.rs:
crates/aircraft/src/transponder.rs:
