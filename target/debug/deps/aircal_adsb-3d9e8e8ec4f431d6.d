/root/repo/target/debug/deps/aircal_adsb-3d9e8e8ec4f431d6.d: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

/root/repo/target/debug/deps/aircal_adsb-3d9e8e8ec4f431d6: crates/adsb/src/lib.rs crates/adsb/src/altitude.rs crates/adsb/src/bits.rs crates/adsb/src/cpr.rs crates/adsb/src/crc.rs crates/adsb/src/decoder.rs crates/adsb/src/frame.rs crates/adsb/src/icao.rs crates/adsb/src/me.rs crates/adsb/src/ppm.rs

crates/adsb/src/lib.rs:
crates/adsb/src/altitude.rs:
crates/adsb/src/bits.rs:
crates/adsb/src/cpr.rs:
crates/adsb/src/crc.rs:
crates/adsb/src/decoder.rs:
crates/adsb/src/frame.rs:
crates/adsb/src/icao.rs:
crates/adsb/src/me.rs:
crates/adsb/src/ppm.rs:
