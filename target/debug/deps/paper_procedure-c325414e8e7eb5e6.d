/root/repo/target/debug/deps/paper_procedure-c325414e8e7eb5e6.d: tests/paper_procedure.rs

/root/repo/target/debug/deps/paper_procedure-c325414e8e7eb5e6: tests/paper_procedure.rs

tests/paper_procedure.rs:
