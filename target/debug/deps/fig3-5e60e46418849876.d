/root/repo/target/debug/deps/fig3-5e60e46418849876.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5e60e46418849876: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
