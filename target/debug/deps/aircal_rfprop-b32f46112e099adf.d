/root/repo/target/debug/deps/aircal_rfprop-b32f46112e099adf.d: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

/root/repo/target/debug/deps/libaircal_rfprop-b32f46112e099adf.rlib: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

/root/repo/target/debug/deps/libaircal_rfprop-b32f46112e099adf.rmeta: crates/rfprop/src/lib.rs crates/rfprop/src/antenna.rs crates/rfprop/src/diffraction.rs crates/rfprop/src/empirical.rs crates/rfprop/src/fading.rs crates/rfprop/src/linkbudget.rs crates/rfprop/src/materials.rs crates/rfprop/src/noise.rs crates/rfprop/src/pathloss.rs

crates/rfprop/src/lib.rs:
crates/rfprop/src/antenna.rs:
crates/rfprop/src/diffraction.rs:
crates/rfprop/src/empirical.rs:
crates/rfprop/src/fading.rs:
crates/rfprop/src/linkbudget.rs:
crates/rfprop/src/materials.rs:
crates/rfprop/src/noise.rs:
crates/rfprop/src/pathloss.rs:
