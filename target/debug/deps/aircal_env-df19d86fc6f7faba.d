/root/repo/target/debug/deps/aircal_env-df19d86fc6f7faba.d: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

/root/repo/target/debug/deps/aircal_env-df19d86fc6f7faba: crates/env/src/lib.rs crates/env/src/building.rs crates/env/src/scenarios.rs crates/env/src/site.rs crates/env/src/world.rs

crates/env/src/lib.rs:
crates/env/src/building.rs:
crates/env/src/scenarios.rs:
crates/env/src/site.rs:
crates/env/src/world.rs:
