/root/repo/target/debug/deps/rand_chacha-9496a762b9bde8bd.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-9496a762b9bde8bd: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
