/root/repo/target/debug/deps/aircal_tv-f68bb3e75afabc51.d: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

/root/repo/target/debug/deps/aircal_tv-f68bb3e75afabc51: crates/tv/src/lib.rs crates/tv/src/channels.rs crates/tv/src/probe.rs crates/tv/src/synth.rs crates/tv/src/towers.rs

crates/tv/src/lib.rs:
crates/tv/src/channels.rs:
crates/tv/src/probe.rs:
crates/tv/src/synth.rs:
crates/tv/src/towers.rs:
