/root/repo/target/debug/deps/aircal_geo-bae6ceddc9cded37.d: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

/root/repo/target/debug/deps/libaircal_geo-bae6ceddc9cded37.rlib: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

/root/repo/target/debug/deps/libaircal_geo-bae6ceddc9cded37.rmeta: crates/geo/src/lib.rs crates/geo/src/angle.rs crates/geo/src/coord.rs crates/geo/src/polygon.rs

crates/geo/src/lib.rs:
crates/geo/src/angle.rs:
crates/geo/src/coord.rs:
crates/geo/src/polygon.rs:
