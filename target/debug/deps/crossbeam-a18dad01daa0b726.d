/root/repo/target/debug/deps/crossbeam-a18dad01daa0b726.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a18dad01daa0b726.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a18dad01daa0b726.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
