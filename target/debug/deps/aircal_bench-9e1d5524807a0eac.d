/root/repo/target/debug/deps/aircal_bench-9e1d5524807a0eac.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaircal_bench-9e1d5524807a0eac.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaircal_bench-9e1d5524807a0eac.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
