/root/repo/target/debug/deps/calibration_pipeline-ae04a7abca154747.d: tests/calibration_pipeline.rs

/root/repo/target/debug/deps/calibration_pipeline-ae04a7abca154747: tests/calibration_pipeline.rs

tests/calibration_pipeline.rs:
