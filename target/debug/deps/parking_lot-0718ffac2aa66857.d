/root/repo/target/debug/deps/parking_lot-0718ffac2aa66857.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-0718ffac2aa66857: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
