/root/repo/target/debug/deps/fig1-61a706e4081057f0.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-61a706e4081057f0: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
