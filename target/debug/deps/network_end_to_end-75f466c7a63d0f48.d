/root/repo/target/debug/deps/network_end_to_end-75f466c7a63d0f48.d: tests/network_end_to_end.rs

/root/repo/target/debug/deps/network_end_to_end-75f466c7a63d0f48: tests/network_end_to_end.rs

tests/network_end_to_end.rs:
