/root/repo/target/debug/deps/aircal_aircraft-1be1d3c15adf814e.d: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

/root/repo/target/debug/deps/libaircal_aircraft-1be1d3c15adf814e.rlib: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

/root/repo/target/debug/deps/libaircal_aircraft-1be1d3c15adf814e.rmeta: crates/aircraft/src/lib.rs crates/aircraft/src/flight.rs crates/aircraft/src/generator.rs crates/aircraft/src/ground_truth.rs crates/aircraft/src/transponder.rs

crates/aircraft/src/lib.rs:
crates/aircraft/src/flight.rs:
crates/aircraft/src/generator.rs:
crates/aircraft/src/ground_truth.rs:
crates/aircraft/src/transponder.rs:
