/root/repo/target/debug/deps/aircal-493f92e0c2d21989.d: src/main.rs

/root/repo/target/debug/deps/aircal-493f92e0c2d21989: src/main.rs

src/main.rs:
