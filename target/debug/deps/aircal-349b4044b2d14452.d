/root/repo/target/debug/deps/aircal-349b4044b2d14452.d: src/main.rs

/root/repo/target/debug/deps/aircal-349b4044b2d14452: src/main.rs

src/main.rs:
