/root/repo/target/debug/deps/aircal_sdr-2e628e388b0197d7.d: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

/root/repo/target/debug/deps/aircal_sdr-2e628e388b0197d7: crates/sdr/src/lib.rs crates/sdr/src/capture.rs crates/sdr/src/faults.rs crates/sdr/src/frontend.rs

crates/sdr/src/lib.rs:
crates/sdr/src/capture.rs:
crates/sdr/src/faults.rs:
crates/sdr/src/frontend.rs:
