/root/repo/target/debug/deps/aircal-dc182b2ffb0b8397.d: src/lib.rs

/root/repo/target/debug/deps/aircal-dc182b2ffb0b8397: src/lib.rs

src/lib.rs:
