/root/repo/target/debug/deps/phy_end_to_end-35a5cbec05ee57df.d: tests/phy_end_to_end.rs

/root/repo/target/debug/deps/phy_end_to_end-35a5cbec05ee57df: tests/phy_end_to_end.rs

tests/phy_end_to_end.rs:
