/root/repo/target/debug/deps/aircal_cellular-c09c61cbcaec78cc.d: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

/root/repo/target/debug/deps/aircal_cellular-c09c61cbcaec78cc: crates/cellular/src/lib.rs crates/cellular/src/bands.rs crates/cellular/src/nr.rs crates/cellular/src/scan.rs crates/cellular/src/tower.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bands.rs:
crates/cellular/src/nr.rs:
crates/cellular/src/scan.rs:
crates/cellular/src/tower.rs:
