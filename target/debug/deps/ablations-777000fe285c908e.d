/root/repo/target/debug/deps/ablations-777000fe285c908e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-777000fe285c908e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
