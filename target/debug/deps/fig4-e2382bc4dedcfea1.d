/root/repo/target/debug/deps/fig4-e2382bc4dedcfea1.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-e2382bc4dedcfea1: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
