/root/repo/target/debug/examples/fov_survey-f273cf5b000d51ec.d: examples/fov_survey.rs

/root/repo/target/debug/examples/fov_survey-f273cf5b000d51ec: examples/fov_survey.rs

examples/fov_survey.rs:
