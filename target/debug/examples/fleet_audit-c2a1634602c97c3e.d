/root/repo/target/debug/examples/fleet_audit-c2a1634602c97c3e.d: examples/fleet_audit.rs

/root/repo/target/debug/examples/fleet_audit-c2a1634602c97c3e: examples/fleet_audit.rs

examples/fleet_audit.rs:
