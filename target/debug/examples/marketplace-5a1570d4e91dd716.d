/root/repo/target/debug/examples/marketplace-5a1570d4e91dd716.d: examples/marketplace.rs

/root/repo/target/debug/examples/marketplace-5a1570d4e91dd716: examples/marketplace.rs

examples/marketplace.rs:
