/root/repo/target/debug/examples/capture_planning-2927d88600c2ea25.d: examples/capture_planning.rs

/root/repo/target/debug/examples/capture_planning-2927d88600c2ea25: examples/capture_planning.rs

examples/capture_planning.rs:
