/root/repo/target/debug/examples/quickstart-c9de2e8b98d04274.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c9de2e8b98d04274: examples/quickstart.rs

examples/quickstart.rs:
