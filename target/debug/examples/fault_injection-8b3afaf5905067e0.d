/root/repo/target/debug/examples/fault_injection-8b3afaf5905067e0.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-8b3afaf5905067e0: examples/fault_injection.rs

examples/fault_injection.rs:
