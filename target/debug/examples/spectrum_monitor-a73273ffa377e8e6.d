/root/repo/target/debug/examples/spectrum_monitor-a73273ffa377e8e6.d: examples/spectrum_monitor.rs

/root/repo/target/debug/examples/spectrum_monitor-a73273ffa377e8e6: examples/spectrum_monitor.rs

examples/spectrum_monitor.rs:
