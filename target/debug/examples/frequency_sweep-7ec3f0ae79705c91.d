/root/repo/target/debug/examples/frequency_sweep-7ec3f0ae79705c91.d: examples/frequency_sweep.rs

/root/repo/target/debug/examples/frequency_sweep-7ec3f0ae79705c91: examples/frequency_sweep.rs

examples/frequency_sweep.rs:
