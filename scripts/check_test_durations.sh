#!/usr/bin/env bash
# Named-suite gate with per-suite wall-clock budgets: runs every tier-1
# integration suite by name (so a deleted or renamed suite fails loudly
# instead of silently shrinking coverage) and fails if any suite runs
# longer than its ceiling in scripts/test_budget.json. The ceilings are
# deliberately generous — they catch a suite quietly growing into a
# ten-minute monster, not CI jitter.
#
#   scripts/check_test_durations.sh
#
# Exits non-zero if any suite fails OR overruns its budget.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET_FILE=scripts/test_budget.json

# Flat {"suite": seconds} map; extracted with sed so the gate needs
# nothing beyond coreutils.
budget_for() {
  sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p" "$BUDGET_FILE"
}

fail=0

run_suite() {
  local name="$1"
  shift
  local budget
  budget=$(budget_for "$name")
  if [ -z "$budget" ]; then
    echo "# TEST BUDGET: no entry for suite '$name' in $BUDGET_FILE" >&2
    fail=1
    return
  fi
  echo "== suite: $name (budget ${budget}s) =="
  local start end elapsed
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  elapsed=$((end - start))
  if [ "$elapsed" -gt "$budget" ]; then
    echo "# TEST BUDGET EXCEEDED: $name took ${elapsed}s (budget ${budget}s)" >&2
    fail=1
  else
    echo "# test budget ok: $name took ${elapsed}s (budget ${budget}s)"
  fi
}

run_suite chaos_network        cargo test --release -q --test chaos_network
run_suite observability        cargo test --release -q --test observability
run_suite properties           cargo test --release -q --test properties
run_suite golden_vectors       cargo test --release -q --test golden_vectors
run_suite geometry_equivalence cargo test --release -q -p aircal-env --test geometry_equivalence
run_suite allocations          cargo test --release -q -p aircal-bench --test allocations
run_suite byzantine            cargo test --release -q --test byzantine
run_suite fleet_sim            cargo test --release -q --test fleet_sim
run_suite protocol_fuzz        cargo test --release -q -p aircal-net --test protocol_fuzz
run_suite simd_equivalence     cargo test --release -q -p aircal-dsp --test simd_equivalence
run_suite cloud_recovery       cargo test --release -q --test cloud_recovery

exit $fail
