#!/usr/bin/env bash
# Full verification gate: build, test, lint, and regenerate the pipeline
# performance report. Run from anywhere; operates on the repo root.
#
#   scripts/verify.sh
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --bins --benches

echo "== tests (workspace) =="
cargo test --workspace --release -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== named suites + per-suite duration budgets (scripts/test_budget.json) =="
# Runs chaos, observability, properties, golden vectors, geometry
# equivalence, allocations, byzantine, fleet determinism, and protocol
# fuzz by name, each timed against its checked-in wall-clock ceiling.
scripts/check_test_durations.sh

echo "== quickstart demo (calibration end-to-end) =="
cargo run --release --example quickstart

echo "== fault injection demo (front-end + network chaos) =="
cargo run --release --example fault_injection

echo "== cloud failover demo (crash + partition recovery, digest diffed) =="
cargo run --release --example cloud_failover -- 400 42 --no-partition

echo "== perfreport (--quick, alloc + perf + robustness + scale + recovery budgets enforced) =="
cargo run --release -p aircal-bench --bin perfreport -- --quick --check-allocs --check-perf --check-robust --check-scale --check-recovery

echo "== verify: all gates passed =="
