#!/usr/bin/env bash
# Full verification gate: build, test, lint, and regenerate the pipeline
# performance report. Run from anywhere; operates on the repo root.
#
#   scripts/verify.sh
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --bins --benches

echo "== tests (workspace) =="
cargo test --workspace --release -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== chaos (deterministic network fault injection) =="
cargo test --release -q --test chaos_network

echo "== observability (telemetry determinism + quarantine replay) =="
cargo test --release -q --test observability

echo "== properties (CPR roundtrip, CRC-24 distance, FIR equivalence) =="
cargo test --release -q --test properties

echo "== golden vectors (bit-exact fixtures) =="
cargo test --release -q --test golden_vectors

echo "== geometry equivalence (indexed/cached path bit-identity) =="
cargo test --release -q -p aircal-env --test geometry_equivalence

echo "== quickstart demo (calibration end-to-end) =="
cargo run --release --example quickstart

echo "== fault injection demo (front-end + network chaos) =="
cargo run --release --example fault_injection

echo "== allocation gate (zero steady-state allocs + bit-identity) =="
cargo test --release -q -p aircal-bench --test allocations

echo "== byzantine gate (robust fusion, eviction timelines, crash/restore) =="
cargo test --release -q --test byzantine

echo "== perfreport (--quick, alloc + perf + robustness budgets enforced) =="
cargo run --release -p aircal-bench --bin perfreport -- --quick --check-allocs --check-perf --check-robust

echo "== verify: all gates passed =="
