//! Crash-tolerant cloud: the ISSUE 10 acceptance suite.
//!
//! The cloud journals every audit-round effect to a CRC-framed
//! write-ahead journal before applying it, checkpoints the registry at
//! round boundaries, and rebuilds from `snapshot + journal replay` after
//! a crash. These tests pin the two properties that make that durable
//! state trustworthy:
//!
//! * **crash transparency** — a fleet audited across a cloud crash and
//!   recovery ends in registry state bit-identical (FNV digest over the
//!   durable per-node encoding) to the same fleet audited by a cloud
//!   that never died, including a node behind a burst-outage partition
//!   and nodes whose replies are duplicated or reordered in flight;
//! * **exactly-once effects** — at-least-once delivery (duplicated
//!   frames, partition-absorbed retries) leaves durable state
//!   bit-identical to a fault-free wire, at the threaded transport level
//!   and, via proptest schedules, across 200-node simulated campaigns
//!   with arbitrary duplicate/reorder/crash plans.

use aircal::net::{
    spawn_node_with_faults, BurstOutage, Cloud, LinkFaults, NodeAgent, NodeBehavior, RetryPolicy,
    SnapshotError,
};
use aircal::obs::Obs;
use aircal::sim::{run, CampaignConfig};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_env::{scenarios::testbed_origin, Scenario, ScenarioKind};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn sky() -> Arc<TrafficSim> {
    Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 30,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        7117,
    ))
}

/// The recovery fleet: a clean control, a node severed by a burst
/// outage shorter than the retry budget (a partition the transport
/// rides out), a node whose replies get duplicated, and one whose
/// replies arrive late behind newer traffic (reorder → timeout →
/// retry). Each entry is `(name, scenario, faults, link_seed)`.
fn fleet(faulted: bool) -> Vec<(&'static str, ScenarioKind, LinkFaults, u64)> {
    let f = |faults: LinkFaults| if faulted { faults } else { LinkFaults::none() };
    vec![
        ("alpha-steady", ScenarioKind::OpenField, LinkFaults::none(), 501),
        (
            "bravo-partitioned",
            ScenarioKind::Rooftop,
            f(LinkFaults {
                burst_outages: vec![BurstOutage { start: 5, len: 2 }],
                ..LinkFaults::none()
            }),
            502,
        ),
        (
            "charlie-duplicated",
            ScenarioKind::OpenField,
            f(LinkFaults {
                duplicate_on: vec![2, 6],
                ..LinkFaults::none()
            }),
            503,
        ),
        (
            "delta-reordered",
            ScenarioKind::Rooftop,
            f(LinkFaults {
                reorder_on: vec![4],
                ..LinkFaults::none()
            }),
            504,
        ),
    ]
}

fn build_cloud(sky: &Arc<TrafficSim>, faulted: bool) -> Cloud {
    let mut cloud = Cloud::new(sky.clone());
    cloud.retry_policy = RetryPolicy::quick();
    for (name, kind, faults, link_seed) in fleet(faulted) {
        let mut agent = NodeAgent::new(Scenario::build(kind), NodeBehavior::Honest, sky.clone());
        agent.claims.name = name.to_string();
        let link = spawn_node_with_faults(agent, faults, link_seed);
        assert_eq!(cloud.register(link).as_deref(), Some(name));
    }
    cloud
}

/// ≥1 cloud crash + ≥1 partition: the cloud audits the fleet, takes a
/// checkpoint, audits again, then dies mid-campaign. Recovery from the
/// checkpoint snapshot plus the journal's `NodeState` upserts must land
/// on the exact registry state the continuous-run cloud holds at the
/// same point, and the next audit round must continue bit-identically.
#[test]
fn crashed_cloud_recovers_bit_identically_to_continuous_run() {
    let sky = sky();

    // Continuous twin: same fleet, same fault plans, cloud never dies.
    let continuous = build_cloud(&sky, true);
    continuous.audit_all(1001);
    continuous.audit_all(1002);
    let mid_digest = continuous.registry_digest();
    continuous.audit_all(1003);
    let final_digest = continuous.registry_digest();
    let final_health = continuous.health_report();
    let final_anomalies = continuous.anomaly_report();
    continuous.shutdown();

    // Crashy run: checkpoint after round 1, crash after round 2.
    let cloud = build_cloud(&sky, true);
    cloud.audit_all(1001);
    let snapshot = cloud.checkpoint();
    cloud.audit_all(1002);
    let (links, journal_bytes) = cloud.crash();
    assert_eq!(links.len(), 4, "node daemons outlive the cloud");

    let obs = Obs::recording();
    let (recovered, report) =
        Cloud::recover(sky.clone(), Some(&snapshot), &journal_bytes, links, obs)
            .expect("snapshot + journal recover");
    assert!(
        report.recovered_records > 0,
        "round 2 left records to replay: {report:?}"
    );
    assert!(
        report.applied_upserts > 0,
        "replay re-applied node upserts: {report:?}"
    );
    assert_eq!(report.truncated_bytes, 0, "a synced journal has no torn tail");
    assert_eq!(recovered.obs.counter("wal.recoveries"), 1);
    assert!(recovered.obs.counter("wal.replay") >= report.applied_upserts);

    assert_eq!(
        recovered.registry_digest(),
        mid_digest,
        "recovered registry is bit-identical to the continuous cloud's"
    );

    // The recovered cloud continues the campaign as if nothing happened.
    recovered.audit_all(1003);
    assert_eq!(recovered.registry_digest(), final_digest);
    assert_eq!(recovered.health_report(), final_health);
    assert_eq!(recovered.anomaly_report(), final_anomalies);

    // The retry split (satellite): the partitioned node limped through
    // on retries, the duplicated node's extra frames were drained as
    // stale, the control did everything first-try — and all of it is
    // visible in the per-link counters, crash notwithstanding.
    let stats = recovered.link_stats();
    let by_name = |n: &str| {
        stats
            .iter()
            .find(|(name, _)| name == n)
            .unwrap_or_else(|| panic!("{n} registered"))
            .1
    };
    let bravo = by_name("bravo-partitioned");
    assert!(bravo.retried_ok > 0, "outage absorbed by retries: {bravo:?}");
    let charlie = by_name("charlie-duplicated");
    assert!(charlie.stale_drained > 0, "duplicate copies drained: {charlie:?}");
    let delta = by_name("delta-reordered");
    assert!(delta.timeouts > 0, "reordered reply cost a timeout: {delta:?}");
    assert!(delta.retried_ok > 0, "…and the retry succeeded: {delta:?}");
    let alpha = by_name("alpha-steady");
    assert_eq!(alpha.retried_ok, 0, "control never retried: {alpha:?}");
    assert!(alpha.first_try_ok > 0, "control succeeds first-try: {alpha:?}");
    recovered.shutdown();
}

/// Exactly-once at the wire: a fleet whose links duplicate replies and
/// black-hole requests (absorbed by retries, never reaching the node)
/// ends with durable registry state bit-identical to the same fleet on
/// perfect links. Reorder is excluded *by design*: a reordered reply
/// forces a retry the node services a second time, which the attested
/// service ledger is supposed to notice — that divergence is the
/// feature, not a bug.
#[test]
fn absorbed_wire_faults_leave_registry_identical_to_fault_free_run() {
    let sky = sky();
    let digest_of = |faults: LinkFaults, seeds: [u64; 2]| {
        let mut cloud = Cloud::new(sky.clone());
        cloud.retry_policy = RetryPolicy::quick();
        for (name, link_seed) in [("node-a", seeds[0]), ("node-b", seeds[1])] {
            let mut agent = NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            );
            agent.claims.name = name.to_string();
            let link = spawn_node_with_faults(agent, faults.clone(), link_seed);
            assert_eq!(cloud.register(link).as_deref(), Some(name));
        }
        cloud.audit_all(2001);
        cloud.audit_all(2002);
        let digest = cloud.registry_digest();
        let health = cloud.health_report();
        cloud.shutdown();
        (digest, health)
    };

    let clean = digest_of(LinkFaults::none(), [601, 602]);
    let faulted = digest_of(
        LinkFaults {
            burst_outages: vec![BurstOutage { start: 4, len: 2 }],
            duplicate_on: vec![2, 7],
            ..LinkFaults::none()
        },
        [601, 602],
    );
    assert_eq!(
        faulted, clean,
        "at-least-once delivery must not move one bit of durable state"
    );
}

/// A snapshot/journal pair that don't belong together is refused: the
/// journal's opening `SnapshotTaken` record carries the CRC of the
/// snapshot it was reset against, and recovery checks it.
#[test]
fn recovery_refuses_a_mismatched_snapshot_journal_pair() {
    let sky = sky();
    let cloud = build_cloud(&sky, false);
    cloud.audit_all(3001);
    let snapshot = cloud.checkpoint();
    cloud.audit_all(3002);
    let (links, journal_bytes) = cloud.crash();

    // Corrupt one byte of the snapshot body: the CRC chained into the
    // journal no longer matches.
    let mut tampered = snapshot.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    let err = Cloud::recover(
        sky.clone(),
        Some(&tampered),
        &journal_bytes,
        links,
        Obs::default(),
    )
    .err()
    .expect("tampered snapshot must be refused");
    match err {
        SnapshotError::ChecksumMismatch { .. } => {}
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
}

/// The 200-node simulated campaign both proptest cases below diff
/// against, fault-free, computed once (it is identical for every case).
fn sim_base_config() -> CampaignConfig {
    let mut cfg = CampaignConfig::paper_default(200, 0x5EC0_7E57);
    cfg.max_ticks = 400;
    cfg
}

fn fault_free_baseline() -> &'static (String, Vec<u64>) {
    static BASELINE: OnceLock<(String, Vec<u64>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let r = run(&sim_base_config());
        (r.state_digest, r.trust_table)
    })
}

proptest! {
    /// Satellite 3: an *arbitrary* duplicate/reorder/crash schedule over
    /// the seeded 200-node campaign yields a final cloud digest
    /// bit-identical to the fault-free run. Crash ticks may collide,
    /// repeat, or land inside audit rounds — every schedule must be
    /// invisible in the final state, and the engine's invariant monitor
    /// (no double-applied trust delta, unbroken journal chain, recovered
    /// ≡ continuous digest at every crash) must stay silent throughout.
    #[test]
    fn arbitrary_fault_schedules_are_invisible_in_the_final_digest(
        crash_ticks in proptest::collection::vec(1u64..400, 0..4),
        duplicate_fraction in 0.0f64..0.6,
        reorder_fraction in 0.0f64..0.6,
    ) {
        let mut cfg = sim_base_config();
        cfg.recovery.crash_ticks = crash_ticks.clone();
        cfg.recovery.duplicate_fraction = duplicate_fraction;
        cfg.recovery.reorder_fraction = reorder_fraction;
        let r = run(&cfg);
        prop_assert!(
            r.invariant_violations.is_empty(),
            "schedule {crash_ticks:?}/dup {duplicate_fraction:.2}/reorder {reorder_fraction:.2}: {:?}",
            r.invariant_violations
        );
        prop_assert_eq!(r.recoveries, crash_ticks.len() as u64);
        let (digest, trust) = fault_free_baseline();
        prop_assert_eq!(
            &r.state_digest, digest,
            "faulty schedule changed the final cloud digest"
        );
        prop_assert_eq!(&r.trust_table, trust);
    }
}
