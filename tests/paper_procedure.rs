//! Integration: the paper's full §3.1 procedure (30 s capture, ground
//! truth at t = 15 s, 100 km radius) against the three testbed locations,
//! asserting the qualitative content of Figure 1.

use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};

fn paper_survey(scenario: &Scenario, seed: u64) -> SurveyResult {
    let traffic = TrafficSim::generate(
        TrafficConfig {
            count: 70,
            ..TrafficConfig::paper_default(scenario.site.position)
        },
        seed,
    );
    run_survey(
        &scenario.world,
        &scenario.site,
        &traffic,
        &SurveyConfig::default(),
        seed,
    )
}

/// Figure 1(a): the rooftop receives from "many airplanes up to 95 km
/// from the sensor in the west sector", while distant aircraft in the
/// other sectors are mostly missed.
#[test]
fn figure1a_rooftop() {
    let s = Scenario::build(ScenarioKind::Rooftop);
    let r = paper_survey(&s, 101);
    let west = s.expected_fov;

    let far_west: Vec<_> = r
        .points
        .iter()
        .filter(|p| west.contains(p.bearing_deg) && p.range_m > 60_000.0)
        .collect();
    let observed_far_west = far_west.iter().filter(|p| p.observed).count();
    assert!(
        observed_far_west * 2 >= far_west.len(),
        "only {observed_far_west}/{} distant western aircraft observed",
        far_west.len()
    );
    assert!(
        r.max_observed_range_m() > 80_000.0,
        "longest reception {:.0} km",
        r.max_observed_range_m() / 1_000.0
    );

    let far_other: Vec<_> = r
        .points
        .iter()
        .filter(|p| !west.contains(p.bearing_deg) && p.range_m > 60_000.0)
        .collect();
    let observed_far_other = far_other.iter().filter(|p| p.observed).count();
    assert!(
        observed_far_other * 4 <= far_other.len().max(1),
        "too many distant non-west receptions: {observed_far_other}/{}",
        far_other.len()
    );
}

/// Figure 1(b): the window site receives "from a few airplanes in the
/// slim unobscured direction up to 80 km away".
#[test]
fn figure1b_window() {
    let s = Scenario::build(ScenarioKind::BehindWindow);
    let r = paper_survey(&s, 102);
    let in_aperture_far = r
        .points
        .iter()
        .filter(|p| s.expected_fov.contains(p.bearing_deg) && p.range_m > 50_000.0 && p.observed)
        .count();
    // The aperture is ~8% of the sky, so "a few" is exactly right.
    assert!(
        in_aperture_far >= 1,
        "no long-range receptions through the aperture"
    );
    // Outside the aperture, long-range reception is rare.
    let outside_far_observed = r
        .points
        .iter()
        .filter(|p| !s.expected_fov.contains(p.bearing_deg) && p.range_m > 50_000.0 && p.observed)
        .count();
    let outside_far_total = r
        .points
        .iter()
        .filter(|p| !s.expected_fov.contains(p.bearing_deg) && p.range_m > 50_000.0)
        .count();
    assert!(
        outside_far_observed * 5 <= outside_far_total.max(1),
        "{outside_far_observed}/{outside_far_total} long-range receptions outside the aperture"
    );
}

/// Figure 1(c): indoors, "the sensor … could only receive some messages
/// from airplanes very close to the sensor", and within ~20 km messages
/// get through "regardless of direction".
#[test]
fn figure1c_indoor() {
    let s = Scenario::build(ScenarioKind::Indoor);
    let r = paper_survey(&s, 103);
    // Use a slightly wider "close" disc so the sample isn't a single
    // aircraft; require a meaningful observation rate only when there are
    // enough samples to call it a rate.
    let close: Vec<_> = r.points.iter().filter(|p| p.range_m < 18_000.0).collect();
    let close_observed = close.iter().filter(|p| p.observed).count();
    if close.len() >= 3 {
        assert!(
            close_observed * 3 >= close.len(),
            "close-in reception too weak indoors: {close_observed}/{}",
            close.len()
        );
    }
    let far_observed = r
        .points
        .iter()
        .filter(|p| p.range_m > 35_000.0 && p.observed)
        .count();
    assert!(
        far_observed <= 2,
        "{far_observed} long-range receptions indoors"
    );
}

/// The paper repeated each experiment "over 10 times … obtaining similar
/// results": the qualitative ordering must be stable across seeds.
#[test]
fn repeatability_across_seeds() {
    let scenarios = paper_scenarios();
    for seed in [5u64, 17, 91] {
        let ranges: Vec<f64> = scenarios
            .iter()
            .map(|s| paper_survey(s, seed).max_observed_range_m())
            .collect();
        assert!(
            ranges[0] > ranges[2],
            "seed {seed}: rooftop ({:.0} m) must out-range indoor ({:.0} m)",
            ranges[0],
            ranges[2]
        );
        assert!(
            ranges[1] > ranges[2],
            "seed {seed}: window ({:.0} m) must out-range indoor ({:.0} m)",
            ranges[1],
            ranges[2]
        );
    }
}
