//! Chaos: a fleet audit under an aggressive seeded fault plan.
//!
//! Every fault the transport can inject fires somewhere in this fleet —
//! burst outages, a crashed daemon, a wedged thread, garbled frames,
//! latency, probabilistic loss — and the audit must neither panic nor
//! hang, every node that answers `Describe` must get a verdict, the wire
//! counters must match the injected schedule exactly, and the same seed
//! must reproduce the same verdicts bit for bit.

use aircal::net::{
    spawn_node_with_faults, BurstOutage, Cloud, LinkError, LinkFaults, LinkStats, NodeAgent,
    NodeBehavior, NodeHealth, RetryPolicy, VerificationVerdict,
};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::freqprofile::SourceKind;
use aircal_env::{scenarios::testbed_origin, Scenario, ScenarioKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sky() -> Arc<TrafficSim> {
    Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        4242,
    ))
}

/// The chaos fleet: one node per fault family, plus a healthy control.
/// Each entry is `(name, scenario, faults, link_seed)`.
fn fleet() -> Vec<(&'static str, ScenarioKind, LinkFaults, u64)> {
    vec![
        ("steady", ScenarioKind::OpenField, LinkFaults::none(), 100),
        (
            "laggy",
            ScenarioKind::Rooftop,
            LinkFaults {
                latency_ms: 5,
                ..LinkFaults::none()
            },
            101,
        ),
        // Wire attempts: registration=0, describe=1, survey=2,3 (outage)
        // then 4 succeeds, cells=5, tv=6.
        (
            "bursty",
            ScenarioKind::OpenField,
            LinkFaults {
                burst_outages: vec![BurstOutage { start: 2, len: 2 }],
                ..LinkFaults::none()
            },
            102,
        ),
        // Daemon serves registration + describe + survey, then dies:
        // cells and tv fail permanently (SendFailed, no retry).
        (
            "crashy",
            ScenarioKind::Rooftop,
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            103,
        ),
        // Node-side requests: registration=0, describe=1, survey=2,
        // cells=3 wedges (timeout), the retry (4) and tv (5) succeed.
        (
            "wedged",
            ScenarioKind::OpenField,
            LinkFaults {
                hang_on: vec![3],
                ..LinkFaults::none()
            },
            104,
        ),
        // Wire attempts 2 and 3 (the survey and its first retry) come
        // back garbled as wrong-kind frames; attempt 4 is clean.
        (
            "garbled",
            ScenarioKind::Rooftop,
            LinkFaults {
                corrupt_on: vec![2, 3],
                ..LinkFaults::none()
            },
            105,
        ),
        // Plain probabilistic chaos from the seeded stream: no exact
        // schedule to assert, but bit-identical across runs.
        (
            "flaky",
            ScenarioKind::OpenField,
            LinkFaults {
                request_drop: 0.25,
                response_drop: 0.1,
                latency_ms: 1,
                ..LinkFaults::none()
            },
            106,
        ),
    ]
}

struct RunOutput {
    verdicts_json: String,
    health: Vec<(String, NodeHealth, u32)>,
    stats: Vec<(String, LinkStats)>,
}

/// Register the fleet, audit it once, and capture everything observable.
fn run_fleet() -> RunOutput {
    let sky = sky();
    let mut cloud = Cloud::new(sky.clone());
    cloud.retry_policy = RetryPolicy::quick();
    // The wedged node costs one cells budget of wall clock; keep it small
    // (still ≫ the millisecond-scale honest scan time).
    cloud.retry_policy.budgets.cells = Duration::from_secs(1);

    for (name, kind, faults, link_seed) in fleet() {
        let mut agent = NodeAgent::new(Scenario::build(kind), NodeBehavior::Honest, sky.clone());
        agent.claims.name = name.to_string();
        let link = spawn_node_with_faults(agent, faults, link_seed);
        assert_eq!(
            cloud.register(link).as_deref(),
            Some(name),
            "{name} must survive registration"
        );
    }
    assert_eq!(cloud.node_count(), 7);

    let verdicts = cloud.audit_all(777);
    let verdicts_json = serde_json::to_string(&verdicts).expect("verdicts serialize");
    let health = cloud.health_report();
    let stats = cloud.link_stats();
    cloud.shutdown();
    RunOutput {
        verdicts_json,
        health,
        stats,
    }
}

#[test]
fn chaos_fleet_audit_is_deterministic_and_bounded() {
    let started = Instant::now();
    let first = run_fleet();

    // --- no hangs: the whole chaotic audit is wall-clock bounded. The
    // only deliberate stall is the wedged node's 1 s cells budget.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "fleet audit took {:?}",
        started.elapsed()
    );

    // --- every node that answered Describe got a verdict. (Verdicts
    // round-trip through JSON, as they would on a real wire.)
    let verdicts: Vec<(String, Option<VerificationVerdict>)> =
        serde_json::from_str(&first.verdicts_json).unwrap();
    assert_eq!(verdicts.len(), 7);
    let names: Vec<&str> = verdicts.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        vec!["bursty", "crashy", "flaky", "garbled", "laggy", "steady", "wedged"],
        "registry reports sorted by name"
    );
    for (name, v) in &verdicts {
        assert!(v.is_some(), "{name} answered Describe, so it gets a verdict");
    }

    // --- the victim of the mid-audit crash still gets a usable partial
    // verdict: FoV from the survey, profile marked incomplete, trust
    // penalized but present.
    let crashy = verdicts[1].1.as_ref().unwrap();
    assert!(!crashy.is_complete());
    let failed: Vec<&str> = crashy.failed_steps.iter().map(|f| f.step.as_str()).collect();
    assert_eq!(failed, vec!["cells", "tv"]);
    assert!(
        crashy.failed_steps.iter().all(|f| f.error == LinkError::SendFailed),
        "a crashed daemon reads as SendFailed: {:?}",
        crashy.failed_steps
    );
    assert!(!crashy.fov.open_ring.is_empty(), "FoV survives the crash");
    assert_eq!(
        crashy.profile.missing_sources,
        vec![SourceKind::Cellular, SourceKind::BroadcastTv]
    );
    assert!(!crashy.profile.is_complete());
    assert!(
        crashy.trust.flags.iter().any(|f| f.contains("missing evidence")),
        "trust must record the missing evidence: {:?}",
        crashy.trust.flags
    );
    assert!(!crashy.approved);

    // --- scheduled faults: the wire counters match the plan exactly.
    let stat = |name: &str| -> LinkStats {
        first
            .stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no stats for {name}"))
            .1
    };
    // steady/laggy: 5 clean calls (registration + 4 audit steps).
    for name in ["steady", "laggy"] {
        let s = stat(name);
        assert_eq!((s.attempts, s.ok, s.retries, s.gave_up), (5, 5, 0, 0), "{name}");
    }
    // bursty: 2 drops in the outage window, 2 retries, recovered.
    let s = stat("bursty");
    assert_eq!(
        (s.attempts, s.ok, s.dropped, s.retries, s.gave_up),
        (7, 5, 2, 2, 0),
        "bursty {s:?}"
    );
    // crashy: 3 clean calls, then cells and tv each fail once — dead
    // threads are not retried.
    let s = stat("crashy");
    assert_eq!(
        (s.attempts, s.ok, s.send_failed, s.retries, s.gave_up),
        (5, 3, 2, 0, 2),
        "crashy {s:?}"
    );
    // wedged: one timeout on cells, one retry, recovered.
    let s = stat("wedged");
    assert_eq!(
        (s.attempts, s.ok, s.timeouts, s.retries, s.gave_up),
        (6, 5, 1, 1, 0),
        "wedged {s:?}"
    );
    // garbled: two wrong-kind replies on the survey, recovered on the
    // third attempt.
    let s = stat("garbled");
    assert_eq!(
        (s.attempts, s.ok, s.wrong_kind, s.retries, s.gave_up),
        (7, 5, 2, 2, 0),
        "garbled {s:?}"
    );
    // flaky: no exact schedule, but the counters must be consistent —
    // every attempt is accounted for by exactly one outcome.
    let s = stat("flaky");
    assert_eq!(
        s.attempts,
        s.ok + s.dropped + s.timeouts + s.send_failed + s.wrong_kind,
        "flaky {s:?}"
    );

    // --- health lifecycle after one round: only the partial audit
    // (crashy) is penalized; recovered-via-retry nodes stay Healthy.
    for (name, health, failures) in &first.health {
        match name.as_str() {
            "crashy" => {
                assert_eq!(*health, NodeHealth::Degraded, "{name}");
                assert_eq!(*failures, 1, "{name}");
            }
            "flaky" => {} // seed-dependent: may or may not have lost a step
            _ => {
                assert_eq!(*health, NodeHealth::Healthy, "{name}");
                assert_eq!(*failures, 0, "{name}");
            }
        }
    }

    // --- same seed ⇒ same verdicts, same health, same wire counters.
    let second = run_fleet();
    assert_eq!(first.verdicts_json, second.verdicts_json, "verdicts must reproduce");
    assert_eq!(first.health, second.health, "health must reproduce");
    assert_eq!(first.stats, second.stats, "wire counters must reproduce");
}

/// Shutdown under chaos: a fleet whose nodes crash, wedge and drop
/// replies must still shut down promptly (no deadlock in `shutdown` or
/// `Drop`).
#[test]
fn chaotic_fleet_shuts_down_promptly() {
    let sky = sky();
    let started = Instant::now();
    let mut links = Vec::new();
    for (name, kind, faults, link_seed) in fleet() {
        let mut agent = NodeAgent::new(Scenario::build(kind), NodeBehavior::Honest, sky.clone());
        agent.claims.name = name.to_string();
        links.push(spawn_node_with_faults(agent, faults, link_seed));
    }
    // Two extra nodes whose fault lands on the Shutdown message itself:
    // a daemon that is already dead, and one that swallows the Shutdown
    // (the capped Bye drain + channel disconnect must still unwedge it).
    for (i, faults) in [
        LinkFaults {
            crash_after: Some(0),
            ..LinkFaults::none()
        },
        LinkFaults {
            hang_on: vec![0],
            ..LinkFaults::none()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let mut agent = NodeAgent::new(
            Scenario::build(ScenarioKind::OpenField),
            NodeBehavior::Honest,
            sky.clone(),
        );
        agent.claims.name = format!("shutdown-victim-{i}");
        links.push(spawn_node_with_faults(agent, faults, 300 + i as u64));
    }
    // Half through shutdown(), half through Drop, with no prior traffic.
    for (i, mut link) in links.into_iter().enumerate() {
        if i % 2 == 0 {
            link.shutdown();
        } else {
            link.timeout = Duration::from_millis(200);
            drop(link);
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "shutdown took {:?}",
        started.elapsed()
    );
}

/// An unreachable node cannot block its neighbors: registration fails
/// fast for a dead daemon and the rest of the fleet audits normally.
#[test]
fn dead_node_does_not_block_fleet() {
    let sky = sky();
    let mut cloud = Cloud::new(sky.clone());
    cloud.retry_policy = RetryPolicy::quick();

    let dead = spawn_node_with_faults(
        NodeAgent::new(
            Scenario::build(ScenarioKind::OpenField),
            NodeBehavior::Honest,
            sky.clone(),
        ),
        LinkFaults {
            crash_after: Some(0),
            ..LinkFaults::none()
        },
        200,
    );
    assert!(cloud.register(dead).is_none(), "dead daemon cannot register");

    let mut alive = NodeAgent::new(
        Scenario::build(ScenarioKind::OpenField),
        NodeBehavior::Honest,
        sky.clone(),
    );
    alive.claims.name = "survivor".into();
    cloud
        .register(spawn_node_with_faults(alive, LinkFaults::none(), 201))
        .expect("healthy node registers");

    let verdicts = cloud.audit_all(888);
    assert_eq!(verdicts.len(), 1);
    let v = verdicts[0].1.as_ref().expect("survivor audited");
    assert!(v.is_complete());
    assert!(v.failed_steps.is_empty());
    cloud.shutdown();
}
