//! Integration: the full calibration pipeline across every scenario —
//! the end-to-end behaviour a marketplace operator relies on.

use aircal::prelude::*;
use aircal::sdr::FrontendFault;
use aircal_core::report::CalibrationReport;

/// The paper's three locations and the open-field reference get the right
/// indoor/outdoor call. The urban canyon is a documented ambiguous case —
/// every measured band is canyon-blocked, which is exactly the paper's
/// "degradation at higher frequencies suggests indoor" signature — so for
/// it we only require a higher outdoor probability than the true indoor
/// site.
#[test]
fn classification_correct_on_all_scenarios() {
    let mut p_by_name = std::collections::HashMap::new();
    for scenario in all_scenarios() {
        let report = Calibrator::quick().calibrate(&scenario.world, &scenario.site, 301);
        p_by_name.insert(scenario.site.name.clone(), report.install.probability_outdoor);
        if scenario.kind != ScenarioKind::UrbanCanyon {
            assert_eq!(
                report.install.outdoor, scenario.is_outdoor,
                "{}: classified {} (p={:.2})",
                scenario.site.name,
                if report.install.outdoor { "outdoor" } else { "indoor" },
                report.install.probability_outdoor
            );
        }
    }
    assert!(
        p_by_name["urban-canyon"] > p_by_name["indoor"] + 0.2,
        "canyon p={:.2} vs indoor p={:.2}",
        p_by_name["urban-canyon"],
        p_by_name["indoor"]
    );
}

/// FoV estimates match scenario ground truth reasonably (IoU) where a
/// sector exists, and collapse where it doesn't.
#[test]
fn fov_quality_per_scenario() {
    for scenario in all_scenarios() {
        let report = Calibrator::quick().calibrate(&scenario.world, &scenario.site, 302);
        if scenario.expected_fov.width_deg == 0.0 {
            assert!(
                report.fov.estimated.width_deg <= 90.0,
                "{}: expected no FoV, estimated {:?}",
                scenario.site.name,
                report.fov.estimated
            );
        } else {
            let iou = report.fov.iou(&scenario.expected_fov);
            assert!(
                iou > 0.25,
                "{}: IoU {iou:.2} (estimated {:?}, truth {:?})",
                scenario.site.name,
                report.fov.estimated,
                scenario.expected_fov
            );
        }
    }
}

/// Reports survive a JSON round trip with their verdicts intact.
#[test]
fn report_serialization_end_to_end() {
    let scenario = Scenario::build(ScenarioKind::BehindWindow);
    let report = Calibrator::quick().calibrate(&scenario.world, &scenario.site, 303);
    let json = report.to_json();
    let back = CalibrationReport::from_json(&json).expect("round trip");
    assert_eq!(back.site_name, report.site_name);
    assert_eq!(back.install.outdoor, report.install.outdoor);
    assert_eq!(back.trust.score, report.trust.score);
    assert_eq!(back.frequency.bands.len(), report.frequency.bands.len());
}

/// A cable fault degrades the trust/coverage of an otherwise perfect node,
/// and a band-limited antenna is exposed by the frequency profile.
#[test]
fn faults_visible_in_reports() {
    let scenario = Scenario::build(ScenarioKind::OpenField);

    let healthy = Calibrator::quick().calibrate(&scenario.world, &scenario.site, 304);
    assert_eq!(healthy.frequency.usable_fraction(), 1.0);

    // 25 dB of cable loss: ADS-B range collapses and weak cells drop out.
    let lossy = Calibrator::quick()
        .with_fault(FrontendFault::CableLoss { db: 25.0 })
        .calibrate(&scenario.world, &scenario.site, 304);
    assert!(
        lossy.survey.max_observed_range_m < healthy.survey.max_observed_range_m,
        "cable loss did not shrink range"
    );

    // Deaf above 900 MHz: the profile must lose every cellular band above
    // 900 MHz while TV (below) stays.
    let deaf = Calibrator::quick()
        .with_fault(FrontendFault::DeafAbove {
            cutoff_hz: 900e6,
            loss_db: 65.0,
        })
        .calibrate(&scenario.world, &scenario.site, 304);
    for b in &deaf.frequency.bands {
        use aircal_core::freqprofile::SourceKind;
        match b.source {
            SourceKind::Cellular if b.freq_hz > 900e6 => assert!(
                b.measured_db.is_none(),
                "{} should be blind above the cutoff",
                b.label
            ),
            SourceKind::BroadcastTv => assert!(
                b.measured_db.is_some(),
                "{} below the cutoff should survive",
                b.label
            ),
            _ => {}
        }
    }
    assert!(deaf.frequency.usable_fraction() < 1.0);
    assert!(
        deaf.frequency.max_usable_freq_hz().unwrap() <= 900e6,
        "claimed usable {:?}",
        deaf.frequency.max_usable_freq_hz()
    );
}

/// The fleet auditor ranks the healthy open-field node above everything
/// else and the indoor node at (or near) the bottom.
#[test]
fn fleet_ordering_stable() {
    use aircal_core::fleet::FleetAuditor;
    let fleet = all_scenarios();
    for seed in [401u64, 402] {
        let report = FleetAuditor::new(Calibrator::quick()).audit(&fleet, seed);
        let names: Vec<&str> = report.nodes.iter().map(|n| n.name.as_str()).collect();
        let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert!(pos("open-field") <= 1, "seed {seed}: open-field ranked {names:?}");
        assert!(
            pos("indoor") >= 3,
            "seed {seed}: indoor ranked too high: {names:?}"
        );
    }
}
