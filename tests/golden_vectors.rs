//! Golden-vector regression tests: small known-good JSON fixtures that
//! the pipeline must reproduce **bit-exactly** from a fixed seed.
//!
//! The vendored `serde_json` shim prints floats with shortest-roundtrip
//! formatting and keeps object keys in declaration order, so equality on
//! the serialized string is equality on the values — any drift in the
//! DSP chain, decoder, or profiler shows up as a one-line diff here
//! before it shows up as a subtly wrong calibration in the field.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --release --test golden_vectors
//! ```
//!
//! and commit the updated `tests/fixtures/*.json` alongside the change.

use aircal::adsb::me::MePayload;
use aircal::adsb::{cpr, ppm, AdsbFrame, Decoder, IcaoAddress};
use aircal::core::freqprofile::FrequencyProfiler;
use aircal::env::{Scenario, ScenarioKind};
use aircal::sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig};
use aircal::tv::{paper_tv_towers, TvPowerProbe};
use std::path::PathBuf;

const SEED: u64 = 0xD00D;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare `actual` against the committed fixture, byte for byte. With
/// `UPDATE_GOLDEN=1` the fixture is rewritten instead.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    if want != actual {
        let diverges = want
            .lines()
            .zip(actual.lines())
            .position(|(w, a)| w != a)
            .unwrap_or_else(|| want.lines().count().min(actual.lines().count()));
        panic!(
            "golden fixture {name} mismatch at line {}: expected {:?}, got {:?}\n\
             (intentional change? regenerate with UPDATE_GOLDEN=1 and commit)",
            diverges + 1,
            want.lines().nth(diverges).unwrap_or("<eof>"),
            actual.lines().nth(diverges).unwrap_or("<eof>"),
        );
    }
}

/// A deterministic rendered capture: 24 airborne-position bursts with
/// staggered power, phase, and ICAO address over a bladeRF front end.
fn rendered_capture() -> Vec<aircal::sdr::RenderedWindow> {
    let fe = Frontend::new(FrontendConfig::bladerf_xa9(1.09e9, 2e6));
    let floor = fe.noise_floor_dbm();
    let plans: Vec<BurstPlan> = (0..24)
        .map(|i| {
            let frame = AdsbFrame::new(
                IcaoAddress::new(0xA00000 + (i as u32 % 8)),
                MePayload::AirbornePosition {
                    altitude_ft: 28_000.0 + 250.0 * i as f64,
                    cpr: cpr::encode(
                        37.8 + 0.01 * i as f64,
                        -122.4 + 0.02 * i as f64,
                        if i % 2 == 0 { cpr::CprFormat::Even } else { cpr::CprFormat::Odd },
                    ),
                },
            );
            BurstPlan {
                start_s: i as f64 * 2e-3,
                waveform: ppm::modulate(&frame.encode(), 1.0, 0.0),
                rx_power_dbm: floor + 16.0 + (i % 10) as f64,
                phase0: i as f64 * 0.41,
            }
        })
        .collect();
    CaptureRenderer::new(fe).render_seeded(&plans, SEED, 0)
}

/// The full RF→bits path: rendered IQ through the production decoder.
/// Every field of every decoded message — frame contents, sample index,
/// RSSI, bit confidence, repair count — must match the fixture exactly.
#[test]
fn golden_adsb_decode() {
    let decoder = Decoder::default();
    let messages: Vec<_> = rendered_capture()
        .iter()
        .flat_map(|w| decoder.scan(&w.samples, w.start_s))
        .collect();
    assert!(
        messages.len() >= 20,
        "capture should decode almost all 24 bursts, got {}",
        messages.len()
    );
    let json = serde_json::to_string_pretty(&messages).unwrap() + "\n";
    check_golden("adsb_decode.json", &json);
}

/// The TV probe's measured band powers over the paper's transmitter set:
/// the whole synthesis→channel→bandpass→power DSP chain in one vector.
#[test]
fn golden_tv_sweep() {
    let s = Scenario::build(ScenarioKind::Rooftop);
    let towers = paper_tv_towers(&s.world.origin);
    let sweep = TvPowerProbe::default().sweep(&s.world, &s.site, &towers, SEED);
    let json = serde_json::to_string_pretty(&sweep).unwrap() + "\n";
    check_golden("tv_sweep.json", &json);
}

/// A seeded 1000-node campaign through the discrete-event engine: the
/// fixture pins the campaign digest (which folds every event-log line,
/// the final trust table, and every node's health state) plus the
/// headline counters. Any change to event ordering, fault semantics,
/// scheduling, payload synthesis, auditing, or trust arithmetic lands
/// here as a one-line diff. Worker count is deliberately ≥ 2: the
/// fixture also pins the engine's parallelism-invariance claim against
/// the digest a serial run produced when the fixture was generated.
#[test]
fn golden_fleet_campaign_digest() {
    use aircal::sim::{run, CampaignConfig};
    let mut cfg = CampaignConfig::paper_default(1000, SEED);
    cfg.workers = 2;
    cfg.faults.lossy_fraction = 0.3;
    cfg.faults.drop_probability = 0.5;
    let result = run(&cfg);
    let json = result.summary_json() + "\n";
    check_golden("fleet_campaign.json", &json);
}

/// One full cross-band frequency profile (cellular + TV sources) for the
/// rooftop scenario — the artifact the cloud judges nodes against.
#[test]
fn golden_frequency_profile() {
    let s = Scenario::build(ScenarioKind::Rooftop);
    let cells = aircal::cellular::paper_towers(&s.world.origin);
    let tv = paper_tv_towers(&s.world.origin);
    let profile = FrequencyProfiler::default().profile(&s.world, &s.site, &cells, &tv, SEED);
    let json = serde_json::to_string_pretty(&profile).unwrap() + "\n";
    check_golden("frequency_profile.json", &json);
}
