//! Integration: the full networked deployment — threads, links, the cloud
//! auditor, and the rented-measurement product — end to end.

use aircal::net::{spawn_node, Cloud, NodeAgent, NodeBehavior, Request, Response};
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_dsp::psd::band_power_from_psd;
use aircal_env::{scenarios::testbed_origin, Scenario, ScenarioKind};
use std::sync::Arc;

fn sky(seed: u64) -> Arc<TrafficSim> {
    Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(testbed_origin())
        },
        seed,
    ))
}

/// The whole lifecycle: register a mixed fleet, audit it, rent the best
/// node, and verify the rented spectrum data is what the calibration
/// promised.
#[test]
fn marketplace_lifecycle() {
    let sky = sky(9001);
    let cloud = Cloud::new(sky.clone());

    for (i, (kind, behavior)) in [
        (ScenarioKind::OpenField, NodeBehavior::Honest),
        (ScenarioKind::Indoor, NodeBehavior::Honest),
        (ScenarioKind::BehindWindow, NodeBehavior::FalseClaims),
    ]
    .into_iter()
    .enumerate()
    {
        let agent = NodeAgent::new(Scenario::build(kind), behavior, sky.clone());
        assert!(cloud.register(spawn_node(agent, 0.0, 9000 + i as u64)).is_some());
    }
    assert_eq!(cloud.node_count(), 3);

    let verdicts = cloud.audit_all(12345);
    assert_eq!(verdicts.len(), 3);

    // The liar is excluded; the honest open-field node is listed.
    let market = cloud.marketplace();
    let names: Vec<&str> = market.iter().map(|(n, _, _)| n.as_str()).collect();
    assert!(names.contains(&"open-field"));
    assert!(!names.contains(&"behind-window"), "market: {names:?}");

    // Verdicts carry enough detail for a renter to choose by capability.
    for (name, v) in &verdicts {
        let v = v.as_ref().expect("all reachable");
        if name == "open-field" {
            assert!(v.measured_max_freq_hz.unwrap() >= 2.6e9);
            assert!(v.fov.open_fraction() > 0.8);
        }
        if name == "indoor" {
            assert!(v.outdoor_claim_verified, "honest indoor claim verifies");
            // No mid-band capability (a rare shadowing tail can sneak one
            // 2 GHz cell past the sync floor, but never the 2.6 GHz pair).
            assert!(
                v.measured_max_freq_hz.unwrap() < 2.5e9,
                "indoor claimed usable up to {:?}",
                v.measured_max_freq_hz
            );
        }
    }
    cloud.shutdown();
}

/// Renting spectrum from nodes of different quality: the product (a PSD
/// of a broadcast channel) differs exactly as calibration predicts, and
/// the messages survive a JSON round trip (a real wire would carry JSON).
#[test]
fn rented_psd_matches_calibration_promise() {
    let sky = sky(9002);
    let request = Request::MonitorBand {
        center_hz: 545e6, // KST-26, west of the site
        span_hz: 8e6,
        seed: 77,
    };
    // JSON round trip of the request, as a networked deployment would.
    let wire = serde_json::to_string(&request).unwrap();
    let request: Request = serde_json::from_str(&wire).unwrap();

    let mut in_band = Vec::new();
    for kind in [ScenarioKind::OpenField, ScenarioKind::Indoor] {
        let mut link = spawn_node(
            NodeAgent::new(Scenario::build(kind), NodeBehavior::Honest, sky.clone()),
            0.0,
            kind as u64,
        );
        match link.call(request.clone()) {
            Ok(Response::Psd { bins, span_hz, .. }) => {
                let p = band_power_from_psd(&bins, span_hz, -2.7e6, 2.7e6);
                in_band.push(aircal_dsp::power::lin_to_db(p));
            }
            other => panic!("unexpected {other:?}"),
        }
        link.shutdown();
    }
    let (open, indoor) = (in_band[0], in_band[1]);
    assert!(
        open > indoor + 10.0,
        "open-field {open:.1} dBFS vs indoor {indoor:.1} dBFS"
    );
}

/// A flaky node is degraded or reported unreachable by the audit rather
/// than wedging the cloud.
#[test]
fn flaky_node_survives_audit_loop() {
    let sky = sky(9003);
    let cloud = Cloud::new(sky.clone());
    // 60% request loss: the cloud's own retry policy (3 attempts per
    // call) usually lands registration; spawn fresh links until it does.
    let mut registered = false;
    for attempt in 0..20 {
        let link = spawn_node(
            NodeAgent::new(
                Scenario::build(ScenarioKind::OpenField),
                NodeBehavior::Honest,
                sky.clone(),
            ),
            0.6,
            9100 + attempt,
        );
        if cloud.register(link).is_some() {
            registered = true;
            break;
        }
    }
    assert!(registered, "20 attempts over a 60% lossy link");
    // Each audit step gets 3 attempts at 40% per-attempt success; a step
    // can still fail. Whatever happens must be clean: a verdict entry is
    // produced either way, partial if steps were lost.
    let verdicts = cloud.audit_all(555);
    assert_eq!(verdicts.len(), 1);
    if let Some(v) = &verdicts[0].1 {
        for f in &v.failed_steps {
            assert!(f.attempts > 1, "retryable losses must have been retried");
        }
    }
    cloud.shutdown();
}
