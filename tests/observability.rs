//! Observability is a *witness*, not a participant: enabling the metrics
//! registry and the audit event log must not change a single output bit,
//! and the telemetry itself must be deterministic — the same seed yields
//! the same event stream and the same counters at any parallelism.
//!
//! Three claims, each load-bearing for quarantine replay:
//!
//! 1. a fleet audit's `AuditEvent` JSONL and metric counters are
//!    byte-identical at survey parallelism 1 and 8, and the `wire.*`
//!    counters equal the transport's own per-link stats exactly;
//! 2. a multi-round quarantine lifecycle (degrade → quarantine →
//!    re-admit) can be replayed from the event log alone: health
//!    transitions, trust deltas, and fault observations appear in order
//!    with exact values;
//! 3. a `Calibrator` run with metrics + tracing enabled produces a
//!    bit-identical report to a run with observability disabled.

use aircal::net::{
    spawn_node_with_faults, BurstOutage, Cloud, LinkFaults, LinkStats, NodeAgent, NodeBehavior,
    NodeHealth, RetryPolicy,
};
use aircal::obs::{trace, AuditEvent, AuditEventKind, Obs};
use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn sky() -> Arc<TrafficSim> {
    Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(aircal_env::scenarios::testbed_origin())
        },
        4242,
    ))
}

/// The scheduled-fault fleet from `chaos_network.rs`, minus the
/// probabilistic `flaky` node: every wire event below happens at a
/// planned attempt index, so the telemetry totals are exact.
fn deterministic_fleet() -> Vec<(&'static str, ScenarioKind, LinkFaults, u64)> {
    vec![
        ("steady", ScenarioKind::OpenField, LinkFaults::none(), 100),
        (
            "laggy",
            ScenarioKind::Rooftop,
            LinkFaults {
                latency_ms: 5,
                ..LinkFaults::none()
            },
            101,
        ),
        (
            "bursty",
            ScenarioKind::OpenField,
            LinkFaults {
                burst_outages: vec![BurstOutage { start: 2, len: 2 }],
                ..LinkFaults::none()
            },
            102,
        ),
        (
            "crashy",
            ScenarioKind::Rooftop,
            LinkFaults {
                crash_after: Some(3),
                ..LinkFaults::none()
            },
            103,
        ),
        (
            "wedged",
            ScenarioKind::OpenField,
            LinkFaults {
                hang_on: vec![3],
                ..LinkFaults::none()
            },
            104,
        ),
        (
            "garbled",
            ScenarioKind::Rooftop,
            LinkFaults {
                corrupt_on: vec![2, 3],
                ..LinkFaults::none()
            },
            105,
        ),
    ]
}

struct FleetRun {
    verdicts_json: String,
    events_jsonl: String,
    counters: BTreeMap<String, u64>,
    stats: Vec<(String, LinkStats)>,
}

fn run_fleet(parallelism: usize, recording: bool) -> FleetRun {
    let sky = sky();
    let mut cloud = Cloud::new(sky.clone());
    if recording {
        cloud.obs = Obs::recording();
    }
    cloud.retry_policy = RetryPolicy::quick();
    cloud.retry_policy.budgets.cells = Duration::from_secs(1);
    cloud.survey_config.parallelism = parallelism;

    for (name, kind, faults, link_seed) in deterministic_fleet() {
        let mut agent = NodeAgent::new(Scenario::build(kind), NodeBehavior::Honest, sky.clone());
        agent.claims.name = name.to_string();
        let link = spawn_node_with_faults(agent, faults, link_seed);
        assert_eq!(cloud.register(link).as_deref(), Some(name));
    }

    let verdicts = cloud.audit_all(777);
    let out = FleetRun {
        verdicts_json: serde_json::to_string(&verdicts).unwrap(),
        events_jsonl: cloud.obs.events_jsonl(),
        counters: cloud.obs.snapshot().counters,
        stats: cloud.link_stats(),
    };
    cloud.shutdown();
    out
}

/// Claim 1: telemetry is parallelism-invariant and exact, and the
/// verdicts are identical whether or not anyone is watching.
#[test]
fn fleet_telemetry_is_deterministic_across_parallelism() {
    let serial = run_fleet(1, true);
    let threaded = run_fleet(8, true);
    let unobserved = run_fleet(1, false);

    // The witness changes nothing: obs on/off, 1 vs 8 worker threads —
    // same verdicts, bit for bit.
    assert_eq!(serial.verdicts_json, threaded.verdicts_json);
    assert_eq!(serial.verdicts_json, unobserved.verdicts_json);
    assert!(unobserved.events_jsonl.is_empty(), "disabled obs records nothing");
    assert!(unobserved.counters.is_empty(), "disabled obs counts nothing");

    // The telemetry itself is deterministic: identical event stream and
    // identical counters at any parallelism.
    assert!(!serial.events_jsonl.is_empty());
    assert_eq!(serial.events_jsonl, threaded.events_jsonl);
    assert_eq!(serial.counters, threaded.counters);

    // Exact totals from the fault schedule: 6 registrations (1 wire
    // attempt each) plus per-node audit plans — steady/laggy 4 clean
    // calls; bursty 2 drops + 2 retries; crashy 2 dead sends, not
    // retried; wedged 1 timeout + 1 retry; garbled 2 wrong-kind + 2
    // retries.
    let c = |name: &str| serial.counters.get(name).copied().unwrap_or(0);
    assert_eq!(c("wire.attempts"), 35);
    assert_eq!(c("wire.ok"), 28);
    assert_eq!(c("wire.dropped"), 2);
    assert_eq!(c("wire.timeouts"), 1);
    assert_eq!(c("wire.send_failed"), 2);
    assert_eq!(c("wire.wrong_kind"), 2);
    assert_eq!(c("wire.retries"), 5);
    assert_eq!(c("wire.gave_up"), 2);
    assert_eq!(c("cloud.nodes_registered"), 6);
    assert_eq!(c("audit.rounds"), 1);
    assert_eq!(c("audit.nodes_audited"), 6);
    assert_eq!(c("audit.steps_total"), 24, "4 steps x 6 nodes");
    assert_eq!(c("audit.steps_failed"), 2, "crashy loses cells and tv");
    assert_eq!(c("health.transitions"), 1, "only crashy degrades");

    // The registry's counters are the transport's counters: every
    // `wire.*` total equals the sum over the per-link stats.
    let sum = |f: fn(&LinkStats) -> u64| serial.stats.iter().map(|(_, s)| f(s)).sum::<u64>();
    assert_eq!(c("wire.attempts"), sum(|s| s.attempts));
    assert_eq!(c("wire.ok"), sum(|s| s.ok));
    assert_eq!(c("wire.retries"), sum(|s| s.retries));
    assert_eq!(c("wire.gave_up"), sum(|s| s.gave_up));
    assert_eq!(c("wire.wrong_kind"), sum(|s| s.wrong_kind));
    assert_eq!(c("wire.dropped"), sum(|s| s.dropped));
    assert_eq!(c("wire.timeouts"), sum(|s| s.timeouts));
    assert_eq!(c("wire.send_failed"), sum(|s| s.send_failed));

    // Sequence numbers are a gapless total order — the property replay
    // tooling relies on.
    let events: Vec<AuditEvent> = serial
        .events_jsonl
        .lines()
        .map(|l| serde_json::from_str(l).expect("every event line parses back"))
        .collect();
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "gapless sequence");
    }

    // The crashy node's story is replayable from the log alone: its
    // dead daemon shows up as two send-failure faults, two failed
    // steps, a −20·2 trust delta, and a healthy→degraded transition.
    let crashy: Vec<&AuditEvent> = events.iter().filter(|e| e.node == "crashy").collect();
    let faults: Vec<&str> = crashy
        .iter()
        .filter_map(|e| match &e.kind {
            AuditEventKind::FaultObserved { step, fault, count: 1 } => {
                assert_eq!(fault, "send_failed");
                Some(step.as_str())
            }
            _ => None,
        })
        .collect();
    assert_eq!(faults, vec!["cells", "tv"]);
    let failed: Vec<&str> = crashy
        .iter()
        .filter_map(|e| match &e.kind {
            AuditEventKind::StepFailed { step, error, wire_attempts: 1 } => {
                assert_eq!(error, "node thread dead");
                Some(step.as_str())
            }
            _ => None,
        })
        .collect();
    assert_eq!(failed, vec!["cells", "tv"]);
    assert!(crashy.iter().any(|e| matches!(
        &e.kind,
        AuditEventKind::TrustDelta { delta, reasons, .. }
            if *delta == -40.0 && reasons == &["cells".to_string(), "tv".to_string()]
    )));
    assert!(crashy.iter().any(|e| matches!(
        &e.kind,
        AuditEventKind::HealthTransition { from, to, consecutive_failures: 1 }
            if from == "healthy" && to == "degraded"
    )));
}

/// Claim 2: the full quarantine lifecycle — three straight partial
/// audits, a probe-gated quarantine round, and clean re-admission — is
/// replayable from the event log with exact transitions and deltas.
#[test]
fn quarantine_lifecycle_replays_from_event_log() {
    let sky = sky();
    let mut cloud = Cloud::new(sky.clone());
    cloud.obs = Obs::recording();
    cloud.retry_policy = RetryPolicy::quick();
    // No retries and a tight deadline: each wedge costs exactly one
    // timed-out attempt.
    cloud.retry_policy.max_attempts = 1;
    cloud.retry_policy.budgets.tv = Duration::from_millis(500);

    // Node-side requests: registration=0, then 4 per audit round. The
    // tv step (requests 4, 8, 12) wedges in rounds 1–3, then recovers.
    let mut agent = NodeAgent::new(
        Scenario::build(ScenarioKind::OpenField),
        NodeBehavior::Honest,
        sky.clone(),
    );
    agent.claims.name = "relapse".to_string();
    let link = spawn_node_with_faults(
        agent,
        LinkFaults {
            hang_on: vec![4, 8, 12],
            ..LinkFaults::none()
        },
        900,
    );
    assert_eq!(cloud.register(link).as_deref(), Some("relapse"));

    let mut healths = Vec::new();
    for round in 0..4u64 {
        cloud.audit_all(1000 + round);
        healths.push(cloud.health_report()[0].1);
    }
    assert_eq!(
        healths,
        vec![
            NodeHealth::Degraded,
            NodeHealth::Degraded,
            NodeHealth::Quarantined,
            NodeHealth::Healthy,
        ]
    );

    let events: Vec<AuditEvent> = cloud
        .obs
        .events_jsonl()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();

    // Health transitions, in order, with exact failure counts: the
    // second round changes nothing (still Degraded), so it emits none.
    let transitions: Vec<(String, String, u32)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            AuditEventKind::HealthTransition { from, to, consecutive_failures } => {
                Some((from.clone(), to.clone(), *consecutive_failures))
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        transitions,
        vec![
            ("healthy".to_string(), "degraded".to_string(), 1),
            ("degraded".to_string(), "quarantined".to_string(), 3),
            ("quarantined".to_string(), "healthy".to_string(), 0),
        ]
    );

    // Trust deltas: −20 per lost tv step in rounds 1–3, nothing to
    // forgive in round 4.
    let deltas: Vec<(f64, Vec<String>)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            AuditEventKind::TrustDelta { delta, reasons, .. } => {
                Some((*delta, reasons.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(deltas.len(), 4);
    for (delta, reasons) in &deltas[..3] {
        assert_eq!(*delta, -20.0);
        assert_eq!(reasons, &vec!["tv".to_string()]);
    }
    assert_eq!(deltas[3], (0.0, Vec::new()));

    // Each wedge is both observed as a fault and recorded as the step's
    // failure, with the transport's own words.
    let tv_failures = events
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                AuditEventKind::StepFailed { step, error, wire_attempts: 1 }
                    if step == "tv" && error == "timed out"
            )
        })
        .count();
    assert_eq!(tv_failures, 3);

    // Round 4 leads with the quarantine probe before the full audit.
    assert!(events.iter().any(|e| matches!(
        &e.kind,
        AuditEventKind::StepCompleted { step, .. } if step == "probe"
    )));

    // Counter cross-check: 1 registration + 3×4 + probe + 4 wire calls,
    // three of which timed out with no retry budget.
    let c = |name: &str| cloud.obs.counter(name);
    assert_eq!(c("audit.rounds"), 4);
    assert_eq!(c("audit.steps_total"), 17, "16 audit steps + 1 probe");
    assert_eq!(c("audit.steps_failed"), 3);
    assert_eq!(c("wire.attempts"), 18);
    assert_eq!(c("wire.ok"), 15);
    assert_eq!(c("wire.timeouts"), 3);
    assert_eq!(c("wire.gave_up"), 3);
    assert_eq!(c("wire.retries"), 0);
    assert_eq!(c("health.transitions"), 3);
    cloud.shutdown();
}

/// Claim 3: a fully observed calibration (metrics registry + global
/// tracer) produces a bit-identical report to an unobserved one, and
/// the metrics agree with the report they watched.
#[test]
fn calibrator_report_unchanged_by_observability() {
    let s = Scenario::build(ScenarioKind::Rooftop);
    let plain = Calibrator::quick().calibrate(&s.world, &s.site, 42);

    let obs = Obs::recording();
    trace::enable();
    let watched = Calibrator::quick()
        .with_obs(obs.clone())
        .calibrate(&s.world, &s.site, 42);
    trace::disable();
    let spans = trace::drain();

    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&watched).unwrap(),
        "observability must not change the report"
    );

    // The registry saw the same pipeline the report describes.
    let snap = obs.snapshot();
    assert_eq!(snap.counters["survey.messages"], watched.survey.messages as u64);
    assert_eq!(
        snap.counters["survey.aircraft_observed"],
        watched.survey.aircraft_observed as u64
    );
    assert_eq!(snap.gauges["trust.score"], watched.trust.score);
    for stage in ["stage.survey", "stage.fov", "stage.profile", "stage.classify", "stage.trust"] {
        let h = &snap.histograms[stage];
        assert_eq!(h.count, 1, "{stage} ran exactly once");
        assert!(h.sum > 0.0, "{stage} took measurable time");
    }
    // The tracer saw the instrumented kernels. (Other tests may add
    // spans concurrently — membership, not equality.)
    let names: Vec<String> = trace::summarize(&spans).iter().map(|s| s.name.clone()).collect();
    for expected in ["survey", "preamble_scan", "tv_sweep", "cell_scan"] {
        assert!(names.iter().any(|n| n == expected), "missing span {expected}: {names:?}");
    }
}
