//! Integration: the full PHY stack — aircraft kinematics → DO-260B frame
//! encoding → PPM modulation → RF channel + front end → preamble
//! detection → bit slicing → CRC → CPR position recovery — checked
//! against ground truth at the geodetic level.

use aircal::adsb::cpr::{decode_global, CprFormat, CprPair};
use aircal::adsb::me::MePayload;
use aircal::adsb::{Decoder, ADSB_FREQ_HZ, SAMPLE_RATE_HZ};
use aircal::aircraft::{TrafficConfig, TrafficSim, TransponderSchedule};
use aircal::geo::LatLon;
use aircal::rfprop::{LinkBudget, PathProfile};
use aircal::sdr::{BurstPlan, CaptureRenderer, Frontend, FrontendConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn berkeley() -> LatLon {
    LatLon::surface(37.8716, -122.2727)
}

/// Every message transmitted over a clean 40 km LOS channel must decode,
/// and the CPR-decoded track must follow the true trajectory.
#[test]
fn clean_channel_full_stack() {
    let sensor = berkeley();
    let traffic = TrafficSim::generate(
        TrafficConfig {
            count: 5,
            radius_m: 40_000.0,
            ..TrafficConfig::paper_default(sensor)
        },
        77,
    );
    let emissions = TransponderSchedule::default().emissions(&traffic.flights, 0.0, 5.0, 77);
    assert!(!emissions.is_empty());

    let frontend = Frontend::new(FrontendConfig::bladerf_xa9(ADSB_FREQ_HZ, SAMPLE_RATE_HZ));
    let renderer = CaptureRenderer::new(frontend);
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    let plans: Vec<BurstPlan> = emissions
        .iter()
        .map(|e| {
            let path = PathProfile::line_of_sight(sensor.slant_range_m(&e.position), ADSB_FREQ_HZ);
            let budget = LinkBudget::new(e.tx_power_dbm, 0.0, 2.0);
            BurstPlan {
                start_s: e.time_s,
                waveform: aircal::adsb::ppm::modulate_bytes(&e.frame.encode_bytes(), 1.0, 0.0),
                rx_power_dbm: budget.median_rx_dbm(&path),
                phase0: 1.1,
            }
        })
        .collect();

    let decoder = Decoder::default();
    let mut decoded = Vec::new();
    for w in renderer.render(&plans, &mut rng) {
        decoded.extend(decoder.scan(&w.samples, w.start_s));
    }
    // Clean LOS at ≤40 km: essentially everything decodes (rare overlap
    // collisions may eat a couple of bursts).
    assert!(
        decoded.len() * 100 >= emissions.len() * 95,
        "{}/{} decoded",
        decoded.len(),
        emissions.len()
    );

    // CPR-decode a track for one aircraft and compare against the truth.
    let target = traffic.flights[0].icao;
    let mut even = None;
    let mut odd = None;
    let mut checked = 0;
    for m in decoded.iter().filter(|m| m.frame.icao() == target) {
        if let Some(MePayload::AirbornePosition { cpr, .. }) = m.frame.payload() {
            match cpr.format {
                CprFormat::Even => even = Some(*cpr),
                CprFormat::Odd => odd = Some(*cpr),
            }
            if let (Some(e), Some(o)) = (even, odd) {
                let (lat, lon) = decode_global(&CprPair {
                    even: e,
                    odd: o,
                    latest: cpr.format,
                })
                .expect("CPR pair decodes");
                let decoded_pos = LatLon::surface(lat, lon);
                let truth = traffic.flights[0].position_at(m.time_s);
                let err = decoded_pos.distance_m(&LatLon::surface(truth.lat_deg, truth.lon_deg));
                // One squitter interval of motion (≤130 m) + CPR
                // quantization (~5 m).
                assert!(err < 300.0, "track error {err} m at t={}", m.time_s);
                checked += 1;
            }
        }
    }
    assert!(checked >= 3, "only {checked} positions verified");
}

/// Message loss must be monotone in obstruction depth: deeper shadowing
/// decodes strictly fewer messages.
#[test]
fn decode_count_monotone_in_obstruction() {
    let sensor = berkeley();
    let traffic = TrafficSim::generate(
        TrafficConfig {
            count: 12,
            radius_m: 80_000.0,
            ..TrafficConfig::paper_default(sensor)
        },
        78,
    );
    let emissions = TransponderSchedule::default().emissions(&traffic.flights, 0.0, 4.0, 78);
    let frontend = Frontend::new(FrontendConfig::bladerf_xa9(ADSB_FREQ_HZ, SAMPLE_RATE_HZ));
    let renderer = CaptureRenderer::new(frontend);
    let decoder = Decoder::default();

    let decoded_with_extra_loss = |loss_db: f64| -> usize {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let plans: Vec<BurstPlan> = emissions
            .iter()
            .map(|e| {
                let mut path =
                    PathProfile::line_of_sight(sensor.slant_range_m(&e.position), ADSB_FREQ_HZ);
                path.excess_db = loss_db;
                let budget = LinkBudget::new(e.tx_power_dbm, 0.0, 2.0);
                BurstPlan {
                    start_s: e.time_s,
                    waveform: aircal::adsb::ppm::modulate_bytes(&e.frame.encode_bytes(), 1.0, 0.0),
                    rx_power_dbm: budget.median_rx_dbm(&path),
                    phase0: 0.0,
                }
            })
            .collect();
        renderer
            .render(&plans, &mut rng)
            .iter()
            .map(|w| decoder.scan(&w.samples, w.start_s).len())
            .sum()
    };

    let counts: Vec<usize> = [0.0, 15.0, 25.0, 35.0, 60.0]
        .iter()
        .map(|&l| decoded_with_extra_loss(l))
        .collect();
    for w in counts.windows(2) {
        assert!(w[0] >= w[1], "counts not monotone: {counts:?}");
    }
    assert!(counts[0] > 0);
    assert_eq!(*counts.last().unwrap(), 0, "60 dB must kill everything");
}

/// The antenna-pattern angular helper in `rfprop` must agree with the
/// canonical one in `geo` (they are intentionally duplicated).
#[test]
fn angle_separation_consistency() {
    use aircal::rfprop::AntennaPattern;
    let sector = AntennaPattern::Sector {
        boresight_deg: 10.0,
        beamwidth_deg: 60.0,
        peak_gain_dbi: 10.0,
        back_gain_dbi: -20.0,
    };
    for az in [0.0, 40.0, 170.0, 350.0, 355.5] {
        let sep = aircal::geo::angle::separation(az, 10.0);
        // Reconstruct the separation from the Gaussian rolloff and compare.
        let gain = sector.gain_dbi(az, 0.0);
        if gain > -20.0 {
            let implied = (((10.0 - gain) / 3.0).sqrt()) * 30.0;
            assert!((implied - sep).abs() < 1e-6, "az {az}: {implied} vs {sep}");
        }
    }
}
