//! Fleet-scale determinism suite for the discrete-event campaign
//! engine (`aircal-sim`).
//!
//! The engine's contract: identical seeds produce bit-identical event
//! orders, event logs, campaign digests, and trust tables — at any
//! worker count, and across process boundaries. This suite checks that
//! contract at the 1000-node scale the Electrosense regime lives in,
//! plus the scheduling claim that motivates the engine: the
//! utility-driven (stalest-profile-first) policy converges fleet
//! coverage in measurably fewer virtual ticks than round-robin.

use aircal::sim::{run, CampaignConfig, SchedulerKind};
use proptest::prelude::*;

/// The canonical 1000-node campaign: heavy enough chaos that every
/// fault path fires (drops, crashes, corruption, miscalibration).
fn campaign_1000(workers: usize, record_log: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig::paper_default(1000, 0xF1EE7);
    cfg.workers = workers;
    cfg.record_log = record_log;
    cfg.faults.lossy_fraction = 0.3;
    cfg.faults.drop_probability = 0.5;
    cfg
}

/// A seeded 1000-node campaign replays bit-identically across worker
/// counts: full result equality — digest, event log, trust table,
/// health census, every counter.
#[test]
fn thousand_node_campaign_is_bit_identical_across_worker_counts() {
    let serial = run(&campaign_1000(1, true));
    for workers in [2, 8] {
        let parallel = run(&campaign_1000(workers, true));
        assert_eq!(
            serial.digest, parallel.digest,
            "digest diverged at workers={workers}"
        );
        assert_eq!(serial.log, parallel.log, "event log diverged at workers={workers}");
        assert_eq!(
            serial.trust_table, parallel.trust_table,
            "trust table diverged at workers={workers}"
        );
        assert_eq!(serial, parallel, "result diverged at workers={workers}");
    }
    // The campaign actually exercised the machinery it claims to.
    assert!(serial.events > 10_000, "events: {}", serial.events);
    assert!(serial.dropped_requests > 0);
    assert!(serial.crashed_nodes > 0);
    assert!(serial.anomaly_flags > 0);
    assert!(!serial.log.is_empty());
}

/// Child half of the cross-process replay check: when the env var is
/// set (by the parent test spawning this same binary), run the
/// canonical campaign and print its digest. A bare `cargo test` run
/// sees the env var unset and the probe is a no-op.
#[test]
fn fleet_sim_child_digest_probe() {
    if std::env::var_os("FLEET_SIM_CHILD").is_none() {
        return;
    }
    let result = run(&campaign_1000(4, false));
    println!("CHILD_DIGEST={}", result.digest);
}

/// A seeded 1000-node campaign replays bit-identically across two
/// *processes*: the parent computes the digest in-process, then
/// re-executes this test binary (filtered to the child probe above)
/// and compares the digest the fresh process prints. Any hidden
/// process-level state — ASLR-dependent hashing, global clocks, thread
/// scheduling — would break this.
#[test]
fn thousand_node_campaign_replays_across_processes() {
    let local = run(&campaign_1000(2, false));

    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args(["--exact", "fleet_sim_child_digest_probe", "--nocapture"])
        .env("FLEET_SIM_CHILD", "1")
        .output()
        .expect("spawn child test process");
    assert!(
        output.status.success(),
        "child process failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The libtest harness may interleave its own "test ... ok" text on
    // the same line, so locate the marker anywhere in the stream.
    let child_digest = stdout
        .split("CHILD_DIGEST=")
        .nth(1)
        .map(|rest| rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect::<String>())
        .unwrap_or_else(|| panic!("no CHILD_DIGEST marker in child output:\n{stdout}"));
    assert_eq!(
        local.digest, child_digest,
        "digest diverged across processes"
    );
}

/// The paper's measurement-scheduling sketch, quantified: with lossy
/// links, stalest-profile-first reaches 90 % fleet coverage in
/// measurably fewer virtual ticks than the round-robin baseline,
/// because a lost dispatch is retried as soon as it times out instead
/// of waiting for a full round-robin lap of the fleet.
#[test]
fn utility_scheduler_converges_measurably_faster_than_round_robin() {
    let mut cfg = campaign_1000(1, false);
    cfg.scheduler = SchedulerKind::UtilityDriven;
    let utility = run(&cfg);
    cfg.scheduler = SchedulerKind::RoundRobin;
    let round_robin = run(&cfg);

    let u = utility
        .coverage90_tick
        .expect("utility campaign reaches 90% coverage");
    let r = round_robin
        .coverage90_tick
        .expect("round-robin campaign reaches 90% coverage");
    assert!(
        u * 3 <= r * 2,
        "utility ({u} ticks) should beat round-robin ({r} ticks) by ≥ 1.5×"
    );
}

proptest! {
    /// Engine determinism, fuzzed: over random fleet sizes, fault
    /// plans, and scheduler policies, a same-seed run at parallelism 1
    /// and parallelism 8 yields a bit-identical event log, digest, and
    /// final trust table.
    #[test]
    fn random_campaigns_are_worker_count_invariant(
        nodes in 4usize..40,
        seed in proptest::any::<u64>(),
        lossy_pct in 0u32..60,
        drop_pct in 0u32..80,
        crash_pct in 0u32..15,
        corrupt_pct in 0u32..10,
        utility in proptest::any::<bool>(),
    ) {
        let mut cfg = CampaignConfig::paper_default(nodes, seed);
        cfg.max_ticks = 150;
        cfg.record_log = true;
        cfg.scheduler = if utility {
            SchedulerKind::UtilityDriven
        } else {
            SchedulerKind::RoundRobin
        };
        cfg.faults.lossy_fraction = lossy_pct as f64 / 100.0;
        cfg.faults.drop_probability = drop_pct as f64 / 100.0;
        cfg.faults.crash_fraction = crash_pct as f64 / 100.0;
        cfg.faults.corrupt_fraction = corrupt_pct as f64 / 100.0;

        cfg.workers = 1;
        let serial = run(&cfg);
        cfg.workers = 8;
        let parallel = run(&cfg);

        prop_assert!(serial.log == parallel.log, "event logs diverged");
        prop_assert!(
            serial.trust_table == parallel.trust_table,
            "trust tables diverged"
        );
        prop_assert!(
            serial == parallel,
            "results diverged: {} vs {}",
            serial.digest,
            parallel.digest
        );
    }
}
