//! Byzantine robustness, end to end: a crowd-sourced fleet where a
//! strict minority of sensors *lies* — spoofed ADS-B ghosts, replayed
//! stale surveys, inflated gain, frozen front ends, slow calibration
//! poisoning — must still converge on the honest consensus, and the
//! cloud must walk every liar down the quarantine ladder to eviction on
//! hard evidence, deterministically, without ever evicting an honest
//! node.
//!
//! Five claims:
//!
//! 1. coordinate-wise median fusion is steered only within the honest
//!    spread for any corrupted strict minority (`f < n/2`), and NaN
//!    poison changes nothing at all (property test);
//! 2. a mixed fleet campaign detects and evicts every adversary at an
//!    exact, replayable round — the full audit-event stream, verdicts,
//!    and health history are bit-identical across two runs — while all
//!    honest nodes stay `Healthy` with zero anomalies;
//! 3. killing the whole deployment mid-campaign (cloud *and* nodes) and
//!    restoring from snapshots resumes bit-identically: same evictions,
//!    same evidence strings, same fused consensus, byte-identical
//!    registry snapshot at the end;
//! 4. a node restarted from a stale snapshot that silently re-serves
//!    different requests is caught by ledger attestation as a history
//!    fork and quarantined on the spot;
//! 5. node snapshots reject every truncation and every single-bit flip
//!    with a typed error — never a panic, never a silently-wrong node.

use aircal::net::{
    spawn_node, AdversaryKind, Cloud, NodeAgent, NodeBehavior, NodeHealth, Request, RetryPolicy,
    VerificationVerdict,
};
use aircal::obs::Obs;
use aircal::prelude::*;
use aircal_aircraft::{TrafficConfig, TrafficSim};
use aircal_core::freqprofile::{BandMeasurement, FrequencyProfile, SourceKind};
use aircal_core::robust::{fuse_profiles, FusionRule};
use proptest::prelude::*;
use std::sync::Arc;

fn sky() -> Arc<TrafficSim> {
    Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 40,
            ..TrafficConfig::paper_default(aircal_env::scenarios::testbed_origin())
        },
        4242,
    ))
}

fn new_cloud(sky: &Arc<TrafficSim>) -> Cloud {
    let mut cloud = Cloud::new(sky.clone());
    cloud.obs = Obs::recording();
    cloud.retry_policy = RetryPolicy::quick();
    cloud
}

// ---------------------------------------------------------------------------
// Claim 1: robust fusion under a corrupted strict minority (property)
// ---------------------------------------------------------------------------

/// A three-band profile whose values are `base` plus a per-node shift:
/// the synthetic fleet all measures the same sky, modulo installation.
fn synthetic_profile(base: f64, shift: f64) -> FrequencyProfile {
    let bands = [0.0, 11.0, 27.0]
        .iter()
        .enumerate()
        .map(|(i, off)| BandMeasurement {
            label: format!("band-{i}"),
            freq_hz: 500e6 + i as f64 * 8e6,
            source: SourceKind::BroadcastTv,
            measured_db: Some(base + off + shift),
            expected_clear_db: base + off,
        })
        .collect();
    FrequencyProfile {
        bands,
        missing_sources: Vec::new(),
    }
}

/// NaN-poisoned copy of [`synthetic_profile`]: every band reports NaN.
fn nan_profile() -> FrequencyProfile {
    let mut p = synthetic_profile(-60.0, 0.0);
    for b in &mut p.bands {
        b.measured_db = Some(f64::NAN);
    }
    p
}

proptest! {
    /// With `f < n/2` corrupted profiles offset arbitrarily far upward,
    /// the fused value of every band stays inside the honest spread —
    /// the liars can pick *which* honest-plausible value wins, never an
    /// implausible one. NaN poison is even weaker: it cannot move the
    /// fusion at all.
    #[test]
    fn median_fusion_recovers_honest_profile_under_minority_corruption(
        base in -85.0f64..-30.0,
        honest_shifts in proptest::collection::vec(-2.0f64..2.0, 3..=7),
        corrupt_offsets in proptest::collection::vec(8.0f64..80.0, 1..=6),
        poison_nan in proptest::any::<bool>(),
    ) {
        let h = honest_shifts.len();
        // Enforce the Byzantine bound: strictly more honest than corrupt.
        let f = corrupt_offsets.len().min(h - 1);

        let honest: Vec<FrequencyProfile> = honest_shifts
            .iter()
            .map(|s| synthetic_profile(base, *s))
            .collect();
        let corrupt: Vec<FrequencyProfile> = corrupt_offsets[..f]
            .iter()
            .map(|off| {
                if poison_nan {
                    nan_profile()
                } else {
                    synthetic_profile(base, *off)
                }
            })
            .collect();

        let honest_refs: Vec<&FrequencyProfile> = honest.iter().collect();
        let mut all_refs = honest_refs.clone();
        all_refs.extend(corrupt.iter());

        let fused_honest = fuse_profiles(&honest_refs, FusionRule::Median);
        let fused_all = fuse_profiles(&all_refs, FusionRule::Median);

        let hmin = honest_shifts.iter().copied().fold(f64::INFINITY, f64::min);
        let hmax = honest_shifts.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        for hb in &fused_honest.bands {
            let all_db = fused_all
                .fused_for(&hb.label, hb.source)
                .expect("every honest band survives fusion");
            let honest_db = hb.fused_db.expect("honest bands are finite");
            if poison_nan {
                // Non-finite samples are dropped before aggregation, so
                // the poisoned fleet fuses to the honest value exactly.
                prop_assert!(
                    (all_db - honest_db).abs() < 1e-12,
                    "NaN poison moved {} by {} dB",
                    hb.label,
                    all_db - honest_db
                );
            } else {
                // The fused value never leaves the honest envelope.
                let lo = honest_db + (hmin - hmax) - 1e-9;
                let hi = honest_db + (hmax - hmin) + 1e-9;
                prop_assert!(
                    all_db >= lo && all_db <= hi,
                    "{}: fused {all_db} left honest envelope [{lo}, {hi}] \
                     (h={h}, f={f})",
                    hb.label
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Claim 2: the adversarial fleet campaign
// ---------------------------------------------------------------------------

/// 6 honest installations (one legitimately lossy window node — large
/// residual, *no* anomaly) and one node per adversary kind: n = 11,
/// f = 5 < n/2.
fn campaign_fleet() -> Vec<(&'static str, ScenarioKind, Option<AdversaryKind>)> {
    vec![
        ("adv-frozen", ScenarioKind::Rooftop, Some(AdversaryKind::FrozenFrontend)),
        ("adv-gain", ScenarioKind::OpenField, Some(AdversaryKind::GainInflate { db: 25.0 })),
        ("adv-poison", ScenarioKind::OpenField, Some(AdversaryKind::CalibrationPoison { db_per_round: 2.5 })),
        ("adv-replay", ScenarioKind::Rooftop, Some(AdversaryKind::ReplayStale)),
        ("adv-spoof", ScenarioKind::OpenField, Some(AdversaryKind::SpoofAdsb { ghosts: 24 })),
        ("h-canyon", ScenarioKind::UrbanCanyon, None),
        ("h-field-a", ScenarioKind::OpenField, None),
        ("h-field-b", ScenarioKind::OpenField, None),
        ("h-roof-a", ScenarioKind::Rooftop, None),
        ("h-roof-b", ScenarioKind::Rooftop, None),
        ("h-window", ScenarioKind::BehindWindow, None),
    ]
}

const CAMPAIGN_ROUNDS: u64 = 8;
const CAMPAIGN_BASE_SEED: u64 = 2000;

struct CampaignRun {
    /// Per-round `(name, health)` snapshots, sorted by name.
    history: Vec<Vec<(String, NodeHealth)>>,
    /// Per-round verdict JSON (the replayable record).
    verdicts_json: Vec<String>,
    /// Round-0 and final-round verdict objects (for fusion math).
    first_verdicts: Vec<(String, Option<VerificationVerdict>)>,
    last_verdicts: Vec<(String, Option<VerificationVerdict>)>,
    /// Fused consensus after round 0 and after the final round.
    first_fused_json: String,
    last_fused_json: String,
    /// Final anomaly ladder: `(name, consecutive, eviction reason)`.
    anomalies: Vec<(String, u32, Option<String>)>,
    events_jsonl: String,
}

fn run_campaign() -> CampaignRun {
    let sky = sky();
    let cloud = new_cloud(&sky);
    for (i, (name, kind, adv)) in campaign_fleet().into_iter().enumerate() {
        let scenario = Scenario::build(kind);
        let mut agent = match adv {
            Some(kind) => NodeAgent::with_adversary(scenario, sky.clone(), kind, 0xBAD5_EED0 + i as u64),
            None => NodeAgent::new(scenario, NodeBehavior::Honest, sky.clone()),
        };
        agent.claims.name = name.to_string();
        assert_eq!(
            cloud.register(spawn_node(agent, 0.0, 7000 + i as u64)).as_deref(),
            Some(name)
        );
    }

    let mut history = Vec::new();
    let mut verdicts_json = Vec::new();
    let mut first_verdicts = Vec::new();
    let mut last_verdicts = Vec::new();
    let mut first_fused_json = String::new();
    let mut last_fused_json = String::new();
    for round in 0..CAMPAIGN_ROUNDS {
        // A fresh base seed per round: fingerprint repeats under a *new*
        // seed are what convict replayers and frozen front ends.
        let verdicts = cloud.audit_all(CAMPAIGN_BASE_SEED + round);
        verdicts_json.push(serde_json::to_string(&verdicts).unwrap());
        history.push(
            cloud
                .health_report()
                .into_iter()
                .map(|(name, health, _)| (name, health))
                .collect(),
        );
        let fused_json = serde_json::to_string(&cloud.fused_profile()).unwrap();
        if round == 0 {
            first_verdicts = verdicts;
            first_fused_json = fused_json;
        } else if round == CAMPAIGN_ROUNDS - 1 {
            last_verdicts = verdicts;
            last_fused_json = fused_json;
        }
    }
    let anomalies = cloud.anomaly_report();
    let events_jsonl = cloud.obs.events_jsonl();
    cloud.shutdown();
    CampaignRun {
        history,
        verdicts_json,
        first_verdicts,
        last_verdicts,
        first_fused_json,
        last_fused_json,
        anomalies,
        events_jsonl,
    }
}

/// Robustly fuse the complete profiles of the named honest nodes from
/// one round's verdicts — the oracle the cloud's own fusion is held to.
fn honest_only_fusion(verdicts: &[(String, Option<VerificationVerdict>)]) -> String {
    let profiles: Vec<&FrequencyProfile> = verdicts
        .iter()
        .filter(|(name, v)| {
            name.starts_with("h-") && v.as_ref().is_some_and(|v| v.is_complete())
        })
        .map(|(_, v)| &v.as_ref().unwrap().profile)
        .collect();
    assert_eq!(profiles.len(), 6, "all six honest nodes audit complete");
    serde_json::to_string(&Some(fuse_profiles(&profiles, FusionRule::Median))).unwrap()
}

#[test]
fn adversarial_fleet_is_evicted_deterministically_and_honest_survive() {
    let run = run_campaign();

    // --- Exact detection timelines -------------------------------------
    // Spot-check (spoof) and physics overshoot (gain) need no history:
    // anomalous from round 0, evicted after 4 consecutive convictions.
    // Replay and frozen need one prior fingerprint under a different
    // seed: anomalous from round 1. Poison drifts 2.5 dB/round off its
    // round-0 baseline and crosses the 6 dB drift threshold in round 3.
    let eviction_round = |name: &str| -> Option<usize> {
        run.history
            .iter()
            .position(|snap| snap.iter().any(|(n, h)| n == name && *h == NodeHealth::Evicted))
    };
    assert_eq!(eviction_round("adv-spoof"), Some(3), "spoof evicted in round 3");
    assert_eq!(eviction_round("adv-gain"), Some(3), "gain evicted in round 3");
    assert_eq!(eviction_round("adv-replay"), Some(4), "replay evicted in round 4");
    assert_eq!(eviction_round("adv-frozen"), Some(4), "frozen evicted in round 4");
    assert_eq!(eviction_round("adv-poison"), Some(6), "poison evicted in round 6");
    // Honest nodes are never even suspected before the liars are gone:
    // the fleet ends the campaign with exactly the 6 honest members.
    assert!(run
        .history
        .last()
        .unwrap()
        .iter()
        .all(|(n, h)| n.starts_with("adv") == (*h == NodeHealth::Evicted)));

    // Eviction is terminal: once out, out for every later round.
    for name in ["adv-spoof", "adv-gain", "adv-replay", "adv-frozen", "adv-poison"] {
        let first = eviction_round(name).unwrap();
        for snap in &run.history[first..] {
            let (_, h) = snap.iter().find(|(n, _)| n == name).unwrap();
            assert_eq!(*h, NodeHealth::Evicted, "{name} stays evicted");
        }
    }

    // Every eviction carries its evidence, and names the check that
    // convicted the node — the replayable justification.
    let reason = |name: &str| -> String {
        run.anomalies
            .iter()
            .find(|(n, _, _)| n == name)
            .and_then(|(_, _, r)| r.clone())
            .unwrap_or_else(|| panic!("{name} has no eviction reason"))
    };
    assert!(reason("adv-spoof").starts_with("spot-check:"), "{}", reason("adv-spoof"));
    assert!(reason("adv-gain").starts_with("overshoot:"), "{}", reason("adv-gain"));
    assert!(reason("adv-replay").starts_with("replay:"), "{}", reason("adv-replay"));
    assert!(reason("adv-frozen").starts_with("frozen:"), "{}", reason("adv-frozen"));
    // By eviction time the poisoner's drift is so large it also trips the
    // absolute overshoot check, which is listed first; the slow drift
    // that convicted it is in the event log.
    assert!(reason("adv-poison").starts_with("overshoot:"), "{}", reason("adv-poison"));
    assert!(
        run.events_jsonl
            .lines()
            .any(|l| l.contains(r#""node":"adv-poison""#) && l.contains(r#""check":"drift""#)),
        "poison was convicted by the drift check"
    );
    // The terminal rung is reached in exactly `evicted_anomalies`
    // consecutive convictions — bounded detection, no lingering.
    for name in ["adv-spoof", "adv-gain", "adv-replay", "adv-frozen", "adv-poison"] {
        let (_, consecutive, _) = run.anomalies.iter().find(|(n, _, _)| n == name).unwrap();
        assert_eq!(*consecutive, 4, "{name} evicted after exactly 4 convictions");
    }

    // --- Honest nodes are never harmed ----------------------------------
    // Including the window node, whose 15–30 dB residual is an honest
    // installation fact, not ladder evidence.
    for snap in &run.history {
        for (name, health) in snap {
            if name.starts_with("h-") {
                assert_eq!(*health, NodeHealth::Healthy, "{name} never leaves Healthy");
            }
        }
    }
    for (name, consecutive, evicted) in &run.anomalies {
        if name.starts_with("h-") {
            assert_eq!(*consecutive, 0, "{name} has no anomaly run");
            assert!(evicted.is_none(), "{name} was never evicted");
        }
    }

    // --- Fusion recovers the honest consensus ---------------------------
    // Final round: every liar is evicted, so the cloud's fused profile
    // *is* the honest-only fusion, bit for bit.
    assert_eq!(run.last_fused_json, honest_only_fusion(&run.last_verdicts));
    // Round 0: all five liars still contribute (f = 5 < n/2 = 5.5), yet
    // on every band the fused consensus stays inside the envelope of
    // what the honest nodes actually measured — the median cannot be
    // steered to an honest-implausible value by a strict minority.
    let first_fused: Option<aircal_core::robust::FusedProfile> =
        serde_json::from_str(&run.first_fused_json).unwrap();
    let first_fused = first_fused.expect("round 0 fused a consensus");
    let mut compared = 0usize;
    for band in &first_fused.bands {
        let Some(fused_db) = band.fused_db else { continue };
        let honest_vals: Vec<f64> = run
            .first_verdicts
            .iter()
            .filter(|(name, v)| name.starts_with("h-") && v.is_some())
            .filter_map(|(_, v)| {
                v.as_ref()
                    .unwrap()
                    .profile
                    .bands
                    .iter()
                    .find(|b| b.label == band.label && b.source == band.source)
                    .and_then(|b| b.measured_db)
                    .filter(|m| m.is_finite())
            })
            .collect();
        if honest_vals.is_empty() {
            continue;
        }
        let lo = honest_vals.iter().copied().fold(f64::INFINITY, f64::min) - 1e-9;
        let hi = honest_vals.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
        assert!(
            fused_db >= lo && fused_db <= hi,
            "{}: round-0 fused {fused_db:.2} dB left the honest envelope [{lo:.2}, {hi:.2}]",
            band.label
        );
        compared += 1;
    }
    assert!(compared >= 8, "fleets overlap on at least 8 bands, got {compared}");

    // --- Bit-identical replay -------------------------------------------
    let replay = run_campaign();
    assert_eq!(run.events_jsonl, replay.events_jsonl, "event stream replays bit-identically");
    assert_eq!(run.verdicts_json, replay.verdicts_json, "verdicts replay bit-identically");
    assert_eq!(
        format!("{:?}", run.history),
        format!("{:?}", replay.history),
        "health history replays bit-identically"
    );
    assert_eq!(
        format!("{:?}", run.anomalies),
        format!("{:?}", replay.anomalies),
        "anomaly ladder replays bit-identically"
    );
}

// ---------------------------------------------------------------------------
// Claim 3: whole-deployment crash mid-campaign, restored from snapshots
// ---------------------------------------------------------------------------

fn restore_fleet() -> Vec<(&'static str, ScenarioKind, Option<AdversaryKind>)> {
    vec![
        ("adv-poison", ScenarioKind::OpenField, Some(AdversaryKind::CalibrationPoison { db_per_round: 2.5 })),
        ("h-field", ScenarioKind::OpenField, None),
        ("h-roof", ScenarioKind::Rooftop, None),
    ]
}

fn restore_agent(
    name: &str,
    kind: ScenarioKind,
    adv: Option<AdversaryKind>,
    sky: &Arc<TrafficSim>,
    i: usize,
) -> NodeAgent {
    let scenario = Scenario::build(kind);
    let mut agent = match adv {
        Some(kind) => NodeAgent::with_adversary(scenario, sky.clone(), kind, 0xFACE + i as u64),
        None => NodeAgent::new(scenario, NodeBehavior::Honest, sky.clone()),
    };
    agent.claims.name = name.to_string();
    agent
}

/// Everything the cloud knows at the end of a campaign, in comparable form.
struct FinalState {
    health: String,
    anomalies: String,
    last_verdicts_json: String,
    fused_json: String,
    registry_snapshot: Vec<u8>,
}

fn final_state(cloud: &Cloud, last_verdicts: &[(String, Option<VerificationVerdict>)]) -> FinalState {
    FinalState {
        health: format!("{:?}", cloud.health_report()),
        anomalies: format!("{:?}", cloud.anomaly_report()),
        last_verdicts_json: serde_json::to_string(&last_verdicts.to_vec()).unwrap(),
        fused_json: serde_json::to_string(&cloud.fused_profile()).unwrap(),
        registry_snapshot: cloud.snapshot_registry(),
    }
}

const RESTORE_ROUNDS: u64 = 8;
const RESTORE_CRASH_AFTER: u64 = 4;
const RESTORE_BASE_SEED: u64 = 3000;

#[test]
fn mid_campaign_crash_restore_resumes_bit_identically() {
    let sky = sky();

    // Uninterrupted baseline.
    let baseline = {
        let cloud = new_cloud(&sky);
        for (i, (name, kind, adv)) in restore_fleet().into_iter().enumerate() {
            let agent = restore_agent(name, kind, adv, &sky, i);
            assert_eq!(
                cloud.register(spawn_node(agent, 0.0, 7100 + i as u64)).as_deref(),
                Some(name)
            );
        }
        let mut last = Vec::new();
        for round in 0..RESTORE_ROUNDS {
            last = cloud.audit_all(RESTORE_BASE_SEED + round);
        }
        let state = final_state(&cloud, &last);
        cloud.shutdown();
        state
    };
    // The baseline campaign itself convicts the poisoner (drift trips in
    // round 3, eviction in round 6 — after the crash point below).
    assert!(baseline.health.contains("Evicted"), "poison evicted: {}", baseline.health);

    // Interrupted run: same fleet, supervisors keep clones for snapshots.
    let cloud = new_cloud(&sky);
    let mut supervisors = Vec::new();
    for (i, (name, kind, adv)) in restore_fleet().into_iter().enumerate() {
        let agent = restore_agent(name, kind, adv, &sky, i);
        // Clones share the ledger and adversary state, so the supervisor
        // snapshots the *live* agent even after it moves into its thread.
        supervisors.push((name, kind, agent.clone()));
        assert_eq!(
            cloud.register(spawn_node(agent, 0.0, 7100 + i as u64)).as_deref(),
            Some(name)
        );
    }
    for round in 0..RESTORE_CRASH_AFTER {
        cloud.audit_all(RESTORE_BASE_SEED + round);
    }

    // Crash the whole deployment: snapshot every node and the registry,
    // then tear everything down.
    let node_snapshots: Vec<(&str, ScenarioKind, Vec<u8>)> = supervisors
        .iter()
        .map(|(name, kind, agent)| (*name, *kind, agent.snapshot()))
        .collect();
    let registry_snapshot = cloud.snapshot_registry();
    cloud.shutdown();

    // Cold start: fresh cloud, nodes rebuilt from their snapshots, the
    // registry's ladders and forensic history overlaid from its own.
    let cloud = new_cloud(&sky);
    for (i, (name, kind, snap)) in node_snapshots.iter().enumerate() {
        let agent = NodeAgent::restore(Scenario::build(*kind), sky.clone(), snap)
            .expect("node snapshot restores");
        assert_eq!(agent.claims.name, *name);
        assert_eq!(
            cloud.register(spawn_node(agent, 0.0, 7100 + i as u64)).as_deref(),
            Some(*name)
        );
    }
    assert_eq!(cloud.restore_registry(&registry_snapshot), Ok(3));

    // Resume the campaign where it died.
    let mut last = Vec::new();
    for round in RESTORE_CRASH_AFTER..RESTORE_ROUNDS {
        last = cloud.audit_all(RESTORE_BASE_SEED + round);
    }
    let resumed = final_state(&cloud, &last);
    cloud.shutdown();

    assert_eq!(resumed.health, baseline.health, "health ladder resumes identically");
    assert_eq!(resumed.anomalies, baseline.anomalies, "anomaly evidence resumes identically");
    assert_eq!(
        resumed.last_verdicts_json, baseline.last_verdicts_json,
        "final verdicts are bit-identical"
    );
    assert_eq!(resumed.fused_json, baseline.fused_json, "fused consensus is bit-identical");
    assert_eq!(
        resumed.registry_snapshot, baseline.registry_snapshot,
        "final registry snapshots are byte-identical"
    );
}

// ---------------------------------------------------------------------------
// Claim 4: history forks are caught by attestation
// ---------------------------------------------------------------------------

#[test]
fn stale_snapshot_restart_is_flagged_as_history_fork_and_quarantined() {
    let sky = sky();
    let cloud = new_cloud(&sky);
    let mut agent = NodeAgent::new(
        Scenario::build(ScenarioKind::OpenField),
        NodeBehavior::Honest,
        sky.clone(),
    );
    agent.claims.name = "h-solo".to_string();
    let supervisor = agent.clone();
    assert_eq!(cloud.register(spawn_node(agent, 0.0, 7200)).as_deref(), Some("h-solo"));

    // Round A: audit, then checkpoint the service ledger.
    cloud.audit_all(5000);
    assert_eq!(cloud.attest_all(), vec![("h-solo".to_string(), true)]);
    // Re-attesting with nothing new served is also consistent.
    assert_eq!(cloud.attest_all(), vec![("h-solo".to_string(), true)]);

    // The operator keeps a snapshot from *now*…
    let stale = supervisor.snapshot();

    // …while the node serves another audit, which the cloud checkpoints.
    cloud.audit_all(5001);
    assert_eq!(cloud.attest_all(), vec![("h-solo".to_string(), true)]);

    // Crash-restart from the stale snapshot: the restarted node silently
    // re-serves a *different* round than the one the cloud recorded.
    let restored = NodeAgent::restore(
        Scenario::build(ScenarioKind::OpenField),
        sky.clone(),
        &stale,
    )
    .expect("stale snapshot still parses");
    assert!(cloud.reattach("h-solo", spawn_node(restored, 0.0, 7201)));
    cloud.audit_all(5002);

    // Attestation walks the chain back to the recorded checkpoint and
    // finds a different history there: fork detected, quarantined.
    assert_eq!(cloud.attest_all(), vec![("h-solo".to_string(), false)]);
    let report = cloud.health_report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].1, NodeHealth::Quarantined, "forked node is quarantined");
    assert!(
        cloud.obs.events_jsonl().contains("history-fork"),
        "the fork is in the audit log"
    );
    cloud.shutdown();
}

// ---------------------------------------------------------------------------
// Claim 5: snapshot corruption never panics, never half-restores
// ---------------------------------------------------------------------------

#[test]
fn node_snapshots_reject_every_truncation_and_bit_flip() {
    let sky = sky();
    let scenario = Scenario::build(ScenarioKind::OpenField);
    let agent = NodeAgent::with_adversary(
        scenario.clone(),
        sky.clone(),
        AdversaryKind::CalibrationPoison { db_per_round: 2.5 },
        7,
    );
    // Populate the durable state: ledger entries and adversary drift.
    let _ = agent.handle(&Request::RunSurvey {
        config: SurveyConfig::quick(),
        seed: 11,
    });
    let _ = agent.handle(&Request::ScanCells { seed: 12 });
    let _ = agent.handle(&Request::SweepTv { seed: 13 });

    let snap = agent.snapshot();

    // The pristine snapshot round-trips exactly.
    let back = NodeAgent::restore(scenario.clone(), sky.clone(), &snap).unwrap();
    assert_eq!(back.claims, agent.claims);
    assert_eq!(back.ledger(), agent.ledger());
    assert_eq!(
        back.adversary.as_ref().unwrap().state(),
        agent.adversary.as_ref().unwrap().state()
    );

    // Every truncation fails with a typed error.
    for len in 0..snap.len() {
        let res = NodeAgent::restore(scenario.clone(), sky.clone(), &snap[..len]);
        assert!(res.is_err(), "truncation to {len} bytes must be rejected");
    }

    // Every single-bit flip fails with a typed error: the header fields
    // are each validated, and the CRC covers the whole payload.
    for i in 0..snap.len() {
        for bit in 0..8 {
            let mut bad = snap.clone();
            bad[i] ^= 1 << bit;
            let res = NodeAgent::restore(scenario.clone(), sky.clone(), &bad);
            assert!(res.is_err(), "bit {bit} of byte {i} flipped must be rejected");
        }
    }
}
