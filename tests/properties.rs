//! Property tests (vendored `proptest` shim, 256 deterministic cases per
//! suite): invariants the paper's pipeline silently relies on.
//!
//! * CPR airborne encode→decode round-trips to within its quantisation
//!   resolution (~5.1 m) anywhere a global decode is defined;
//! * the Mode S CRC-24 detects every 1- and 2-bit corruption of a
//!   112-bit frame (minimum distance ≥ 6 on the (112, 88) code);
//! * the overlap-save [`FastFirFilter`] is the direct-form [`FirFilter`]
//!   to within 1e-9 for arbitrary taps, inputs, and chunking.

use aircal::adsb::cpr::{self, CprFormat, CprPair};
use aircal::adsb::crc::{apply_parity, crc24, verify_frame};
use aircal::dsp::{Cplx, FastFirFilter, FirFilter};
use aircal::geo::LatLon;
use proptest::prelude::*;

/// The worst-case airborne CPR quantisation error: half a bin of
/// 360° / 2^17 / 15 latitude (~2.5 m) plus the matching longitude bin
/// at the equator, with margin. The paper's audits localise aircraft
/// to tens of metres, so 5.1 m of codec error is in the noise.
const CPR_RESOLUTION_M: f64 = 5.1;

proptest! {
    /// Encode a position as an even/odd pair and globally decode it:
    /// the result is within CPR resolution of the input. Pairs that
    /// straddle an NL zone boundary may legitimately fail to decode
    /// (the two messages disagree on zone count); everything that
    /// decodes must be accurate.
    #[test]
    fn cpr_global_roundtrip_within_resolution(
        lat in -85.0f64..85.0,
        lon in -179.99f64..179.99,
        latest_even in proptest::any::<bool>(),
    ) {
        let pair = CprPair {
            even: cpr::encode(lat, lon, CprFormat::Even),
            odd: cpr::encode(lat, lon, CprFormat::Odd),
            latest: if latest_even { CprFormat::Even } else { CprFormat::Odd },
        };
        if let Ok((dlat, dlon)) = cpr::decode_global(&pair) {
            let truth = LatLon::new(lat, lon, 0.0);
            let decoded = LatLon::new(dlat, dlon, 0.0);
            let err_m = truth.distance_m(&decoded);
            prop_assert!(
                err_m <= CPR_RESOLUTION_M,
                "CPR round-trip error {err_m:.3} m at ({lat}, {lon})"
            );
        }
    }

    /// A locally-anchored decode (reference within one zone) never
    /// fails and has the same resolution bound.
    #[test]
    fn cpr_local_roundtrip_within_resolution(
        lat in -85.0f64..85.0,
        lon in -179.99f64..179.99,
        use_even in proptest::any::<bool>(),
        // Reference offset inside the guaranteed-unambiguous half-zone.
        dlat_deg in -0.2f64..0.2,
        dlon_deg in -0.2f64..0.2,
    ) {
        let format = if use_even { CprFormat::Even } else { CprFormat::Odd };
        let pos = cpr::encode(lat, lon, format);
        let (dlat, dlon) = cpr::decode_local(&pos, lat + dlat_deg, lon + dlon_deg)
            .expect("in-range reference always decodes");
        let err_m = LatLon::new(lat, lon, 0.0).distance_m(&LatLon::new(dlat, dlon, 0.0));
        prop_assert!(
            err_m <= CPR_RESOLUTION_M,
            "CPR local decode error {err_m:.3} m at ({lat}, {lon})"
        );
    }

    /// CRC-24 detects every single-bit flip anywhere in a 112-bit frame.
    #[test]
    fn crc24_detects_all_single_bit_flips(
        payload in proptest::collection::vec(proptest::any::<u8>(), 11),
        flip in 0usize..112,
    ) {
        let mut frame = [0u8; 14];
        frame[..11].copy_from_slice(&payload);
        apply_parity(&mut frame);
        prop_assert!(verify_frame(&frame));

        let mut corrupted = frame;
        corrupted[flip / 8] ^= 0x80 >> (flip % 8);
        prop_assert!(
            !verify_frame(&corrupted),
            "undetected single-bit flip at bit {flip}"
        );
    }

    /// CRC-24 detects every double-bit flip: the (112, 88) Mode S code
    /// has minimum distance ≥ 6, so any 2-bit error pattern changes the
    /// syndrome.
    #[test]
    fn crc24_detects_all_double_bit_flips(
        payload in proptest::collection::vec(proptest::any::<u8>(), 11),
        a in 0usize..112,
        b in 0usize..112,
    ) {
        prop_assume!(a != b);
        let mut frame = [0u8; 14];
        frame[..11].copy_from_slice(&payload);
        apply_parity(&mut frame);

        let mut corrupted = frame;
        corrupted[a / 8] ^= 0x80 >> (a % 8);
        corrupted[b / 8] ^= 0x80 >> (b % 8);
        prop_assert!(
            !verify_frame(&corrupted),
            "undetected double-bit flip at bits {a}, {b}"
        );
    }

    /// The syndrome is linear: flipping data bits changes the CRC by
    /// the XOR of the per-bit contributions, so crc(data) over the
    /// payload region is a group homomorphism. Checked indirectly:
    /// crc(x ^ y ^ x) == crc(y).
    #[test]
    fn crc24_is_involutive_under_double_xor(
        x in proptest::collection::vec(proptest::any::<u8>(), 11),
        y in proptest::collection::vec(proptest::any::<u8>(), 11),
    ) {
        let mixed: Vec<u8> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let back: Vec<u8> = mixed.iter().zip(&x).map(|(a, b)| a ^ b).collect();
        prop_assert_eq!(crc24(&back), crc24(&y));
    }

    /// Overlap-save FIR ≡ direct FIR for arbitrary complex taps, input,
    /// and chunk boundaries (streaming state must carry across calls).
    #[test]
    fn fast_fir_matches_direct_fir(
        taps in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..96),
        xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..512),
        split in 1usize..97,
    ) {
        let taps: Vec<Cplx> = taps.into_iter().map(|(re, im)| Cplx::new(re, im)).collect();
        let xs: Vec<Cplx> = xs.into_iter().map(|(re, im)| Cplx::new(re, im)).collect();
        let mut direct = FirFilter::new(taps.clone()).unwrap();
        let mut fast = FastFirFilter::new(taps).unwrap();

        // Direct filter in one shot; fast filter in two chunks split at
        // an arbitrary point — outputs must still agree sample-for-sample.
        let want = direct.process(&xs);
        let cut = split.min(xs.len());
        let mut got = fast.process(&xs[..cut]);
        got.extend(fast.process(&xs[cut..]));

        prop_assert_eq!(want.len(), got.len());
        let scale = 1.0 + xs.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            let err = (*w - *g).abs();
            prop_assert!(
                err <= 1e-9 * scale,
                "FIR divergence {err:.3e} at sample {i}"
            );
        }
    }
}

/// Collision census for [`aircal::dsp::derive_stream_seed`] at fleet
/// scale: the audit loop hands node `i` the seed
/// `base + i * 0x9E37_79B9`, each measurement family salts it
/// (`^ 0xFADE` survey, `^ 0xCE11` cells, `^ 0x7E1E` TV), and the
/// parallel pipelines then derive one stream per burst index. If any
/// two (node, family, burst) streams collided, two "independent"
/// measurements would share every random draw — a correlation the
/// trust machinery could never see. This walks a 10 000-node fleet
/// (the Electrosense regime) across all three families and 8 burst
/// indices and demands every derived stream be unique.
///
/// The derivation survives this census by construction: SplitMix64's
/// finalizer is bijective, so a collision requires two *inputs*
/// `salted_seed + K * (index + 1)` to coincide mod 2^64 — and for
/// audit-seed spacing (multiples of 0x9E37_79B9) with burst indices
/// below 8, the golden-ratio increments never land that close. This
/// test is the regression guard for anyone changing the derivation.
#[test]
fn derive_stream_seed_has_no_cross_node_collisions_at_10k_scale() {
    use aircal::dsp::derive_stream_seed;
    use std::collections::HashSet;

    const NODES: u64 = 10_000;
    const BURSTS: u64 = 8;
    const FAMILY_SALTS: [u64; 3] = [0xFADE, 0xCE11, 0x7E1E];
    // A handful of realistic campaign base seeds, including adversarial
    // edges (0, all-ones, the golden ratio itself).
    const BASE_SEEDS: [u64; 4] = [600, 0, u64::MAX, 0x9E37_79B9_7F4A_7C15];

    for base in BASE_SEEDS {
        let mut seen: HashSet<u64> =
            HashSet::with_capacity((NODES * BURSTS * FAMILY_SALTS.len() as u64) as usize);
        for node in 0..NODES {
            let audit_seed = base.wrapping_add(node * 0x9E37_79B9);
            for salt in FAMILY_SALTS {
                for burst in 0..BURSTS {
                    let stream = derive_stream_seed(audit_seed ^ salt, burst);
                    assert!(
                        seen.insert(stream),
                        "stream collision: base={base:#x} node={node} salt={salt:#x} burst={burst}"
                    );
                }
            }
        }
        assert_eq!(seen.len() as u64, NODES * BURSTS * 3);
    }
}
