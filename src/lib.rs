//! # aircal — automatic calibration for crowd-sourced spectrum sensors
//!
//! A from-scratch Rust reproduction of *"Automatic Calibration in
//! Crowd-sourced Network of Spectrum Sensors"* (Abedi, Sanz, Sahai —
//! HotNets '23): evaluate the installation quality of a remote,
//! unattended spectrum sensor using nothing but **signals of
//! opportunity** — ADS-B squitters from passing aircraft, cellular
//! downlink reference signals, and broadcast TV carriers.
//!
//! This umbrella crate re-exports the whole workspace. Typical entry
//! points:
//!
//! * [`core::Calibrator`] — run the full §3 calibration pipeline on a
//!   node and get a [`core::CalibrationReport`];
//! * [`env::Scenario`] — the paper's three testbed locations (rooftop /
//!   behind-window / indoor) plus synthetic extras;
//! * [`core::fleet::FleetAuditor`] — audit and rank a whole fleet;
//! * the lower layers ([`adsb`], [`aircraft`], [`cellular`], [`tv`],
//!   [`sdr`], [`rfprop`], [`dsp`], [`geo`]) for building custom
//!   experiments.
//!
//! ```
//! use aircal::prelude::*;
//!
//! let scenario = Scenario::build(ScenarioKind::Rooftop);
//! let report = Calibrator::quick().calibrate(&scenario.world, &scenario.site, 42);
//! println!("{}", report.headline());
//! assert!(report.install.outdoor);
//! ```

pub use aircal_adsb as adsb;
pub use aircal_aircraft as aircraft;
pub use aircal_cellular as cellular;
pub use aircal_core as core;
pub use aircal_dsp as dsp;
pub use aircal_env as env;
pub use aircal_geo as geo;
pub use aircal_net as net;
pub use aircal_obs as obs;
pub use aircal_rfprop as rfprop;
pub use aircal_sdr as sdr;
pub use aircal_sim as sim;
pub use aircal_tv as tv;

/// The most common imports for calibration workflows.
pub mod prelude {
    pub use aircal_core::engine::Calibrator;
    pub use aircal_core::fleet::{FleetAuditor, FleetReport};
    pub use aircal_core::fov::{FovEstimator, FovMethod};
    pub use aircal_core::report::CalibrationReport;
    pub use aircal_core::survey::{run_survey, SurveyConfig, SurveyResult};
    pub use aircal_core::trust::TrustAuditor;
    pub use aircal_env::{all_scenarios, paper_scenarios, Scenario, ScenarioKind};
    pub use aircal_geo::{LatLon, Sector};
    pub use aircal_obs::Obs;
}
