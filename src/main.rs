//! `aircal` — command-line front end for the calibration library.
//!
//! ```text
//! aircal scenarios                      list built-in worlds
//! aircal calibrate <scenario> [--json]  calibrate one node
//! aircal fleet                          audit & rank every scenario
//! aircal marketplace                    run the networked marketplace demo
//! aircal schedule <n>                   plan n capture windows
//! ```
//!
//! Global flag: `--seed N` (default 2023). All output is deterministic per
//! seed.

use aircal::prelude::*;
use aircal_core::scheduler::MeasurementScheduler;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seed = extract_seed(&mut args).unwrap_or(2023);
    let json = extract_flag(&mut args, "--json");

    match args.first().map(String::as_str) {
        Some("scenarios") => cmd_scenarios(),
        Some("calibrate") => cmd_calibrate(args.get(1).map(String::as_str), seed, json),
        Some("fleet") => cmd_fleet(seed),
        Some("marketplace") => cmd_marketplace(seed),
        Some("schedule") => {
            let n = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(5usize);
            cmd_schedule(n);
        }
        _ => {
            eprintln!(
                "usage: aircal <scenarios|calibrate <scenario>|fleet|marketplace|schedule <n>> [--seed N] [--json]"
            );
            std::process::exit(2);
        }
    }
}

fn extract_seed(args: &mut Vec<String>) -> Option<u64> {
    let idx = args.iter().position(|a| a == "--seed")?;
    let value = args.get(idx + 1)?.parse().ok();
    args.drain(idx..=idx + 1);
    value
}

fn extract_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(idx) = args.iter().position(|a| a == flag) {
        args.remove(idx);
        true
    } else {
        false
    }
}

fn cmd_scenarios() {
    println!("{:16} {:>8} {:>16}  description", "name", "outdoor", "true FoV");
    for s in all_scenarios() {
        println!(
            "{:16} {:>8} {:>10.0}°@{:>3.0}°  {}",
            s.site.name,
            s.is_outdoor,
            s.expected_fov.width_deg,
            s.expected_fov.center_deg(),
            match s.kind {
                ScenarioKind::Rooftop => "paper location ① (open west sector)",
                ScenarioKind::BehindWindow => "paper location ② (SE window)",
                ScenarioKind::Indoor => "paper location ③ (deep interior)",
                ScenarioKind::OpenField => "ideal reference installation",
                ScenarioKind::UrbanCanyon => "street canyon, open north",
                ScenarioKind::Suburban => "yard mast above wooden houses",
                ScenarioKind::HillShadow => "150 m ridge shadowing the north",
            }
        );
    }
}

fn cmd_calibrate(name: Option<&str>, seed: u64, json: bool) {
    let Some(kind) = name.and_then(ScenarioKind::parse) else {
        eprintln!("unknown scenario (try `aircal scenarios`)");
        std::process::exit(2);
    };
    let scenario = Scenario::build(kind);
    let report = Calibrator::default().calibrate(&scenario.world, &scenario.site, seed);
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.headline());
        println!(
            "  claim check: truth={}, classified={} (p_outdoor {:.2})",
            if scenario.is_outdoor { "outdoor" } else { "indoor" },
            if report.install.outdoor { "outdoor" } else { "indoor" },
            report.install.probability_outdoor
        );
        for b in &report.frequency.bands {
            println!(
                "  {:22} {:>8.1} MHz  {}",
                b.label,
                b.freq_hz / 1e6,
                b.verdict()
            );
        }
        if !report.trust.flags.is_empty() {
            println!("  flags: {}", report.trust.flags.join("; "));
        }
    }
}

fn cmd_fleet(seed: u64) {
    let fleet = all_scenarios();
    let report = FleetAuditor::new(Calibrator::quick()).audit(&fleet, seed);
    println!("{:>4}  {:14} {:>6} {:>8} {:>8}", "rank", "node", "trust", "fov", "install");
    for n in &report.nodes {
        println!(
            "{:>4}  {:14} {:>6.0} {:>7.0}° {:>8}",
            n.rank,
            n.name,
            n.report.trust.score,
            n.report.fov.estimated.width_deg,
            if n.report.install.outdoor { "outdoor" } else { "indoor" },
        );
    }
}

fn cmd_marketplace(seed: u64) {
    use aircal::net::{Cloud, NodeAgent, NodeBehavior};
    use aircal_aircraft::{TrafficConfig, TrafficSim};
    use std::sync::Arc;

    let sky = Arc::new(TrafficSim::generate(
        TrafficConfig {
            count: 45,
            ..TrafficConfig::paper_default(aircal_env::scenarios::testbed_origin())
        },
        seed,
    ));
    let cloud = Cloud::new(sky.clone());
    for (i, (kind, behavior)) in [
        (ScenarioKind::OpenField, NodeBehavior::Honest),
        (ScenarioKind::Rooftop, NodeBehavior::Honest),
        (ScenarioKind::Indoor, NodeBehavior::FalseClaims),
        (ScenarioKind::Suburban, NodeBehavior::Fabricator { ghosts: 80 }),
    ]
    .into_iter()
    .enumerate()
    {
        let agent = NodeAgent::new(Scenario::build(kind), behavior, sky.clone());
        cloud.register(aircal::net::spawn_node(agent, 0.0, seed + i as u64));
    }
    for (name, verdict) in cloud.audit_all(seed ^ 0xA0D17) {
        match verdict {
            Some(v) => println!(
                "{:14} claim={:7} measured={:7} trust={:>3.0} approved={}",
                name,
                if v.claims.outdoor { "outdoor" } else { "indoor" },
                if v.install.outdoor { "outdoor" } else { "indoor" },
                v.trust.score,
                v.approved,
            ),
            None => println!("{name:14} UNREACHABLE"),
        }
    }
    println!("marketplace: {:?}", cloud.marketplace());
    cloud.shutdown();
}

fn cmd_schedule(n: usize) {
    let plan = MeasurementScheduler::default().plan(n);
    for c in plan {
        println!(
            "{:05.2} h  expected {:>5.1} aircraft  value {:.1}",
            c.start_hour, c.expected_aircraft, c.marginal_value
        );
    }
}
