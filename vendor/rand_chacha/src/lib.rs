//! Offline ChaCha8-based generator implementing the workspace `rand`
//! shim's [`RngCore`]/[`SeedableRng`] traits.
//!
//! The block function is RFC 7539 ChaCha reduced to 8 double-rounds —
//! the same core as the real `rand_chacha::ChaCha8Rng`. Output words are
//! consumed little-endian, 64 bytes per block, with a 64-bit block
//! counter, so every (seed, stream) pair yields an independent, fully
//! deterministic, clonable stream.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const DOUBLE_ROUNDS: usize = 4; // 8 ChaCha rounds

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key schedule words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream id (state words 14..16).
    stream: u64,
    /// Current output block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` = exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, &i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(i);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Select an independent stream for the same seed.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BLOCK_WORDS;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_is_plausibly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
