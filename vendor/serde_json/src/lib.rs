//! Offline JSON text layer for the aircal serde shim: renders
//! [`serde::Value`] trees to JSON and parses JSON text back into them.
//!
//! Numbers parse to `Int`/`UInt` when integral (preserving full u64
//! seeds) and `Float` otherwise. Output escapes control characters,
//! quotes and backslashes; non-ASCII passes through as UTF-8.

use serde::{Deserialize, Serialize, Value};

/// JSON parse/serialize error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Match serde_json's "1.0" rendering for integral floats.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // BMP only; surrogate pairs unsupported (shim).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(18_446_744_073_709_551_615)),
            ("b".into(), Value::Int(-3)),
            ("c".into(), Value::Float(1.5)),
            (
                "d".into(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::Str("x\"y".into())]),
            ),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v, None, 0);
        let back: Value = from_str(&s).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("k".into(), Value::UInt(1))]);
        let mut s = String::new();
        write_value(&mut s, &v, Some(2), 0);
        assert_eq!(s, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn malformed_fails() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
