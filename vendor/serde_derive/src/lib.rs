//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim — no `syn`/`quote`, just a small token-tree parser
//! covering the item shapes the aircal workspace actually declares:
//! structs with named fields, tuple structs, and enums with unit, tuple
//! and struct variants (no generics). The generated code targets the
//! shim's `Value` data model with serde's externally-tagged enum layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advance past `#[...]` attribute sequences starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advance past `pub` / `pub(...)` visibility starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a token slice on commas that sit outside `<...>` nesting.
/// (Brackets/braces/parens are whole `Group` trees, so only angle
/// brackets need explicit depth tracking.)
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if is_punct(t, ',') && angle == 0 {
            out.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse the named fields of a brace-delimited body: `a: T, pub b: U, ...`.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(tokens)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let i = skip_vis(&part, skip_attrs(&part, 0));
            match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("serde shim derive supports only structs and enums");
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde shim derive: expected enum body, got {other}"),
        };
        let body_tokens: Vec<TokenTree> = body.into_iter().collect();
        let variants = split_top_level_commas(&body_tokens)
            .into_iter()
            .filter(|part| !part.is_empty())
            .map(|part| {
                let j = skip_attrs(&part, 0);
                let vname = match &part[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde shim derive: expected variant name, got {other}"),
                };
                let kind = match part.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Struct(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Tuple(
                            split_top_level_commas(&inner)
                                .into_iter()
                                .filter(|p| !p.is_empty())
                                .count(),
                        )
                    }
                    _ => VariantKind::Unit,
                };
                Variant { name: vname, kind }
            })
            .collect();
        Item::Enum { name, variants }
    } else {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&inner),
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct {
                    name,
                    arity: split_top_level_commas(&inner)
                        .into_iter()
                        .filter(|p| !p.is_empty())
                        .count(),
                }
            }
            _ => Item::NamedStruct {
                name,
                fields: Vec::new(),
            },
        }
    }
}

/// Derive `Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                              ::serde::Serialize::serialize(f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                  ::serde::Value::Array(::std::vec![{items}]))]),\n",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{items}]))]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code parses")
}

/// Derive `Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(entries, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         let entries = v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {field_inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
                )
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?,"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                     if items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple arity for `{name}`\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({items}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        // Unit variants may also arrive tagged (lenient).
                        VariantKind::Unit => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&items[{i}])?,")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected array\"))?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\"wrong variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({items}))\n\
                                 }}\n"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let field_inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::get_field(entries, \"{f}\")?,"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let entries = inner.as_object().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected object\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {field_inits} }})\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                                 let (tag, inner) = &tagged[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected externally tagged enum `{name}`\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code parses")
}
