//! Offline micro-benchmark harness exposing the criterion API shape the
//! aircal benches use: `Criterion`, benchmark groups, throughput
//! annotations, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine this shim runs a short
//! warmup, then a fixed measurement pass, and prints mean time per
//! iteration (plus derived throughput when annotated). That keeps
//! `cargo bench` functional — and `cargo test --benches` compiling —
//! without any external dependencies.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size: 0,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.throughput, f);
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that takes
        // roughly MEASURE_TARGET, capped so huge routines still finish.
        const MEASURE_TARGET: Duration = Duration::from_millis(200);
        const MAX_CAL_ITERS: u64 = 1 << 20;

        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(20) || n >= MAX_CAL_ITERS {
                // Scale up to the measurement target.
                let scale = (MEASURE_TARGET.as_secs_f64() / t.as_secs_f64().max(1e-9))
                    .clamp(1.0, 64.0);
                n = ((n as f64 * scale) as u64).max(1);
                break;
            }
            n *= 4;
        }

        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!("  {name}: {} / iter ({} iters)", fmt_time(per_iter), b.iters);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!(", {} elem/s", fmt_rate(rate)));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!(", {} B/s", fmt_rate(rate)));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declare a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes harness flags; a plain run
            // benches everything.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.iters > 0);
        assert!(b.elapsed.as_nanos() > 0);
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
    }
}
