//! Offline crossbeam subset: the `channel` module the aircal transport
//! layer uses, backed by `std::sync::mpsc`. Only bounded channels and
//! the timeout-receive path are exposed — that is the full surface the
//! workspace consumes.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Bounded multi-producer channel sender.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(4);
        tx.send(7).expect("send");
        assert_eq!(rx.recv().expect("recv"), 7);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = channel::bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
    }
}
