//! Offline serde subset: a JSON-shaped [`Value`] data model plus
//! [`Serialize`]/[`Deserialize`] traits and derive macros.
//!
//! The real serde is a zero-copy visitor framework; this shim trades that
//! generality for a tiny, dependency-free core the aircal workspace can
//! build without network access. Types serialize into [`Value`] trees and
//! `serde_json` renders/parses the JSON text. The derive macros (from the
//! sibling `serde_derive` shim) generate the same externally-tagged
//! representation real serde uses, so JSON produced here looks like what
//! a stock serde stack would emit.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative integers).
    Int(i64),
    /// Unsigned integer (non-negative integers, full u64 range).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object — insertion-ordered key/value pairs so emitted JSON
    /// preserves struct field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Coerce to f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Build `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is absent (real serde's
    /// missing-field behaviour for `Option`); `None` = hard error.
    fn missing() -> Option<Self> {
        None
    }
}

/// Derive-support helper: fetch and deserialize a struct field.
pub fn get_field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v)
            .map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::missing().ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<K: ToString + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}
