//! Offline, API-compatible subset of the `rand` crate.
//!
//! The aircal container has no access to crates.io, so the workspace
//! vendors the thin slice of `rand`'s API it actually uses: the
//! [`RngCore`] / [`SeedableRng`] traits and the [`Rng::gen_range`]
//! extension over half-open and inclusive numeric ranges. The concrete
//! generator lives in the sibling `rand_chacha` shim.

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Create a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanding it with SplitMix64 —
    /// the same scheme `rand` 0.8 uses, so streams are well-separated
    /// even for adjacent integer seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range by an RNG.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a value can be drawn from (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ≤ span/2^64 — negligible for the spans the
                // simulation draws (all far below 2^32).
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used re-exports, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let b = rng.gen_range(b'A'..=b'Z');
            assert!(b.is_ascii_uppercase());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
