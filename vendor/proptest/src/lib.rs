//! Offline property-testing subset: the `proptest!` macro surface the
//! aircal workspace uses, without shrinking. Each property runs a fixed
//! number of cases drawn from a deterministic per-test RNG (seeded from
//! the test name), so failures reproduce exactly across runs.
//!
//! Supported strategies: numeric ranges (`a..b`, `a..=b`), tuples of
//! strategies (arity ≤ 4), `any::<T>()` for primitive ints/bool,
//! `proptest::collection::vec(strategy, size)`, and the single-char-class
//! regex form `"[chars]{m,n}"` for strings.

/// Cases generated per property.
pub const DEFAULT_CASES: usize = 256;

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Deterministic test RNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the property name so every test gets its own stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.next_f64() as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy for `&'static str` regex patterns of the form `[class]{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_charclass_repeat(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parse `[A-Z0-9]{1,8}`-style patterns: one char class, one repetition.
fn parse_charclass_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut probe = it.clone();
            probe.next(); // '-'
            if let Some(&hi) = probe.peek() {
                it = probe;
                it.next();
                for x in c as u32..=hi as u32 {
                    chars.push(char::from_u32(x)?);
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    let reps = &rest[close + 1..];
    let (min, max) = if reps.is_empty() {
        (1, 1)
    } else {
        let inner = reps.strip_prefix('{')?.strip_suffix('}')?;
        match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = inner.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`DEFAULT_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::DEFAULT_CASES {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __proptest_result {
                        panic!("property `{}` case {} failed: {}",
                               stringify!($name), __proptest_case, e);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// the harness) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skip the current case when a precondition does not hold (the shim
/// counts it as passing rather than re-drawing inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Everything the tests `use proptest::prelude::*;` for.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(any::<u8>(), 4..16)) {
            prop_assert!(v.len() >= 4 && v.len() < 16);
        }

        #[test]
        fn regex_charclass(s in "[A-Z0-9]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
