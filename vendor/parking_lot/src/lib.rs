//! Offline parking_lot subset: a [`Mutex`] over `std::sync::Mutex` with
//! parking_lot's non-poisoning `lock()` signature (a panicked holder
//! does not poison the lock for later users).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Mutual-exclusion lock with parking_lot's infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}
